module Json = Sttc_obs.Json
module Table = Sttc_util.Table
module Metrics = Sttc_obs.Metrics

type source = Result | Checkpoint | Nothing

type t = {
  manifest : Manifest.t;
  rows : Shard.row list;
  missing : Manifest.run list;
  sources : (int * source) list;
  degraded : (int * string) list;
}

let collect ?(degraded = []) ~dir (m : Manifest.t) =
  let per_shard =
    List.init m.shards (fun shard ->
        match Shard.load_result ~dir ~shard with
        | Ok rows -> (shard, Result, rows)
        | Error _ ->
            let rows = Shard.load_checkpoint ~dir ~shard in
            (shard, (if rows = [] then Nothing else Checkpoint), rows))
  in
  let rows =
    List.sort
      (fun (a : Shard.row) b -> compare a.index b.index)
      (List.concat_map (fun (_, _, r) -> r) per_shard)
  in
  let have = Hashtbl.create 64 in
  List.iter (fun (r : Shard.row) -> Hashtbl.replace have r.index ()) rows;
  let missing =
    List.filter
      (fun (r : Manifest.run) -> not (Hashtbl.mem have r.index))
      (Manifest.runs m)
  in
  {
    manifest = m;
    rows;
    missing;
    sources = List.map (fun (s, src, _) -> (s, src)) per_shard;
    degraded = List.sort compare degraded;
  }

let complete t = t.missing = [] && t.degraded = []

(* {2 JSON} *)

let row_json (r : Shard.row) =
  Json.Obj
    ([
       ("index", Json.Int r.index);
       ("circuit", Json.String r.circuit);
       ("config", Json.String r.config);
       ("algorithm", Json.String r.algorithm);
       ("seed", Json.Int r.seed);
     ]
    @
    match r.outcome with
    | Shard.Done m ->
        [
          ("status", Json.String "ok");
          ("gates", Json.Int m.gates);
          ("luts", Json.Int m.luts);
          ("config_bits", Json.Int m.config_bits);
          ("perf_pct", Json.Float m.perf_pct);
          ("power_pct", Json.Float m.power_pct);
          ("area_pct", Json.Float m.area_pct);
          ("n_indep", Json.String m.n_indep);
          ("n_dep", Json.String m.n_dep);
          ("n_bf", Json.String m.n_bf);
        ]
    | Shard.Failed reason ->
        [ ("status", Json.String "failed"); ("reason", Json.String reason) ])

let missing_json (r : Manifest.run) =
  Json.Obj
    [
      ("index", Json.Int r.index);
      ("circuit", Json.String r.circuit);
      ("config", Json.String r.config.label);
      ("algorithm", Json.String (Sttc_core.Flow.algorithm_name r.algorithm));
      ("seed", Json.Int r.seed);
      ("status", Json.String "missing");
    ]

(* rows and missing runs interleaved in run-index order *)
let entries t =
  List.sort
    (fun (i, _) (j, _) -> compare i j)
    (List.map (fun (r : Shard.row) -> (r.index, `Row r)) t.rows
    @ List.map (fun (r : Manifest.run) -> (r.index, `Miss r)) t.missing)

let failed_count t =
  List.length
    (List.filter
       (fun (r : Shard.row) ->
         match r.outcome with Shard.Failed _ -> true | Shard.Done _ -> false)
       t.rows)

let to_json t =
  let m = t.manifest in
  Json.Obj
    [
      ("campaign", Json.String m.Manifest.name);
      ("total_runs", Json.Int (Manifest.run_count m));
      ("completed", Json.Int (List.length t.rows));
      ("failed_runs", Json.Int (failed_count t));
      ("missing", Json.Int (List.length t.missing));
      ( "degraded_shards",
        Json.List
          (List.map
             (fun (shard, cause) ->
               Json.Obj
                 [ ("shard", Json.Int shard); ("cause", Json.String cause) ])
             t.degraded) );
      ( "rows",
        Json.List
          (List.map
             (fun (_, e) ->
               match e with `Row r -> row_json r | `Miss r -> missing_json r)
             (entries t)) );
    ]

(* {2 Validation} *)

let mem name j = Option.value (Json.member name j) ~default:Json.Null
let ( let* ) = Result.bind

let need_int name j =
  Option.to_result
    ~none:(Printf.sprintf "report: missing integer %S" name)
    (Json.to_int_opt (mem name j))

let need_string name j =
  Option.to_result
    ~none:(Printf.sprintf "report: missing string %S" name)
    (Json.to_string_opt (mem name j))

let validate_row i j =
  let* _ = need_int "index" j in
  let* _ = need_string "circuit" j in
  let* _ = need_string "config" j in
  let* _ = need_string "algorithm" j in
  let* _ = need_int "seed" j in
  let* status = need_string "status" j in
  match status with
  | "ok" ->
      let* _ = need_int "luts" j in
      let* _ = need_int "config_bits" j in
      let* _ = need_string "n_bf" j in
      Ok ()
  | "failed" ->
      let* _ = need_string "reason" j in
      Ok ()
  | "missing" -> Ok ()
  | s -> Error (Printf.sprintf "report: row %d: unknown status %S" i s)

let validate j =
  let* _ = need_string "campaign" j in
  let* total = need_int "total_runs" j in
  let* completed = need_int "completed" j in
  let* missing = need_int "missing" j in
  let* _ = need_int "failed_runs" j in
  let* rows =
    Option.to_result ~none:"report: missing \"rows\" list"
      (Json.to_list_opt (mem "rows" j))
  in
  if completed + missing <> total then
    Error
      (Printf.sprintf "report: completed %d + missing %d <> total %d" completed
         missing total)
  else if List.length rows <> total then
    Error
      (Printf.sprintf "report: %d rows but total_runs %d" (List.length rows)
         total)
  else
    let rec go i = function
      | [] -> Ok (List.length rows)
      | r :: rest ->
          let* () = validate_row i r in
          go (i + 1) rest
    in
    go 0 rows

(* {2 Text rendering} *)

let render_text t =
  let m = t.manifest in
  let total = Manifest.run_count m in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "Campaign %s: %d/%d runs complete (%d failed, %d missing)\n"
    m.Manifest.name (List.length t.rows) total (failed_count t)
    (List.length t.missing);
  Buffer.add_char buf '\n';
  let notes = ref [] and n_notes = ref 0 in
  let note text =
    match List.assoc_opt text !notes with
    | Some n -> n
    | None ->
        incr n_notes;
        notes := !notes @ [ (text, !n_notes) ];
        !n_notes
  in
  let tbl =
    Table.create
      ~headers:
        [
          ("#", Table.Right);
          ("Circuit", Table.Left);
          ("Config", Table.Left);
          ("Algorithm", Table.Left);
          ("Seed", Table.Right);
          ("Gates", Table.Right);
          ("LUTs", Table.Right);
          ("Bits", Table.Right);
          ("Perf %", Table.Right);
          ("Power %", Table.Right);
          ("Area %", Table.Right);
          ("N_bf", Table.Right);
          ("Status", Table.Left);
        ]
  in
  let pct f = Printf.sprintf "%.2f" f in
  List.iter
    (fun (index, e) ->
      match e with
      | `Row (r : Shard.row) -> (
          match r.outcome with
          | Shard.Done mt ->
              Table.add_row tbl
                [
                  string_of_int index;
                  r.circuit;
                  r.config;
                  r.algorithm;
                  string_of_int r.seed;
                  string_of_int mt.gates;
                  string_of_int mt.luts;
                  string_of_int mt.config_bits;
                  pct mt.perf_pct;
                  pct mt.power_pct;
                  pct mt.area_pct;
                  mt.n_bf;
                  "ok";
                ]
          | Shard.Failed reason ->
              let n = note ("run failed: " ^ reason) in
              Table.add_row tbl
                [
                  string_of_int index;
                  r.circuit;
                  r.config;
                  r.algorithm;
                  string_of_int r.seed;
                  "-";
                  "-";
                  "-";
                  "-";
                  "-";
                  "-";
                  "-";
                  Printf.sprintf "failed [%d]" n;
                ])
      | `Miss (r : Manifest.run) ->
          let shard = r.index mod m.Manifest.shards in
          let why =
            match List.assoc_opt shard t.degraded with
            | Some cause ->
                Printf.sprintf "not executed (shard %d degraded: %s)" shard
                  cause
            | None -> Printf.sprintf "not executed (shard %d incomplete)" shard
          in
          let n = note why in
          Table.add_row tbl
            [
              string_of_int index;
              r.circuit;
              r.config.label;
              Sttc_core.Flow.algorithm_name r.algorithm;
              string_of_int r.seed;
              "-";
              "-";
              "-";
              "-";
              "-";
              "-";
              "-";
              Printf.sprintf "missing [%d]" n;
            ])
    (entries t);
  Buffer.add_string buf (Table.render tbl);
  if !notes <> [] then (
    Buffer.add_char buf '\n';
    List.iter
      (fun (text, n) -> Printf.bprintf buf "[%d] %s\n" n text)
      !notes);
  Buffer.contents buf

(* {2 Files} *)

let write ~dir t =
  Sttc_obs.Export.write_file (Shard.report_json_path dir) (to_json t);
  Sttc_obs.Export.write_text (Shard.report_text_path dir) (render_text t);
  match
    In_channel.with_open_bin (Shard.report_json_path dir) In_channel.input_all
  with
  | exception Sys_error e -> Error ("report readback: " ^ e)
  | contents -> (
      match Json.of_string contents with
      | Error e -> Error ("report readback: " ^ e)
      | Ok j -> (
          match validate j with Ok _ -> Ok () | Error _ as e -> e))

let merge_metrics ~dir (m : Manifest.t) =
  let shard_snap shard =
    let path = Shard.metrics_path ~dir shard in
    if not (Sys.file_exists path) then None
    else
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error _ -> None
      | contents -> (
          match Json.of_string contents with
          | Error _ -> None
          | Ok j -> (
              match mem "metrics" j with
              | Json.Null -> None
              | metrics -> Result.to_option (Metrics.of_json metrics)))
  in
  List.fold_left
    (fun acc shard ->
      match shard_snap shard with Some s -> Metrics.merge acc s | None -> acc)
    (Metrics.snapshot ())
    (List.init m.shards Fun.id)

let write_metrics ~dir m =
  Sttc_obs.Export.write_file
    (Shard.campaign_metrics_path dir)
    (Sttc_obs.Export.metrics_json_of_snapshot (merge_metrics ~dir m))
