(** Process supervision: spawn, watch, retry, degrade.

    The supervisor owns no science — it runs shards.  Each shard gets a
    worker process ({!Unix.create_process} of [sttc worker ...] by
    default); the supervisor polls its exit status, watches the shard
    heartbeat file for content changes, and enforces an optional
    per-attempt wall-clock deadline.  {e Every} failure mode is the same
    retryable event:

    - nonzero exit, death by signal (including [kill -9]);
    - heartbeat silent longer than the manifest's
      [heartbeat_timeout_s] — the worker is SIGKILLed first;
    - attempt running past [attempt_timeout_s] — likewise;
    - exit 0 but an unloadable result container ([Bad_result]);
    - an exception from an {!In_process} worker ([Crashed]).

    Retry is per shard, with capped exponential backoff
    ([base * 2^(attempt-1)], capped — deterministic, no jitter, so test
    schedules are reproducible).  A shard that exhausts its budget
    degrades: the campaign continues, and aggregation later turns the
    shard's checkpoint into footnoted partial rows rather than losing
    the sweep. *)

(** Why an attempt ended. *)
type cause =
  | Exited of int  (** nonzero exit code *)
  | Signaled of int  (** killed by signal (OCaml signal number) *)
  | Stalled of float  (** heartbeat silent for this many seconds *)
  | Hung of float  (** attempt exceeded its wall-clock deadline *)
  | Bad_result of string  (** exit 0 but the result container rejected *)
  | Crashed of string  (** in-process worker raised *)

val cause_to_string : cause -> string

type event =
  | Spawned of { shard : int; attempt : int; pid : int }
  | Completed of { shard : int; attempt : int }
  | Attempt_failed of {
      shard : int;
      attempt : int;
      cause : cause;
      backoff_s : float;
    }
  | Degraded of { shard : int; attempts : int; cause : cause }

val string_of_event : event -> string

type shard_status =
  | Complete
  | Exhausted of { attempts : int; last : cause }

type outcome = {
  statuses : (int * shard_status) list;  (** by shard, ascending *)
  retries : int;
  respawns : int;  (** spawns beyond each shard's first attempt *)
  heartbeat_misses : int;
  degraded : int;
}

val all_complete : outcome -> bool

(** How to run one shard attempt. *)
type worker =
  | Spawn of (dir:string -> shard:int -> attempt:int -> string array)
      (** argv for a child process; stdout/stderr go to the attempt log *)
  | In_process
      (** call {!Worker.run} directly (no hang detection, no kill
          injection) — for tests and the bench harness *)

val default_spawn : worker
(** [Sys.executable_name worker --dir DIR --shard K --attempt A] — the
    re-exec convention the [sttc] CLI satisfies. *)

type config = {
  dir : string;
  manifest : Manifest.t;
  jobs : int;  (** concurrently running workers *)
  retries : int option;  (** overrides the manifest's budget *)
  backoff_base_s : float;
  backoff_cap_s : float;
  poll_interval_s : float;
  worker : worker;
  on_event : event -> unit;
}

val config :
  ?jobs:int ->
  ?retries:int ->
  ?backoff_base_s:float ->
  ?backoff_cap_s:float ->
  ?poll_interval_s:float ->
  ?worker:worker ->
  ?on_event:(event -> unit) ->
  dir:string ->
  manifest:Manifest.t ->
  unit ->
  config
(** Defaults: [jobs = 2], manifest retries, [backoff_base_s = 0.25],
    [backoff_cap_s = 10.], [poll_interval_s = 0.05],
    [worker = default_spawn], events dropped. *)

val backoff_s : config -> attempt:int -> float
(** The delay inserted before retry number [attempt] (the attempt that
    is about to run, >= 2). *)

val run : config -> outcome
(** Drive every shard to [Complete] or [Exhausted].  Shards whose
    result container already loads are skipped up front — this is what
    makes [--resume] (and re-running a finished campaign) cheap and
    idempotent.

    Counters ([campaign.shard_retries], [campaign.worker_respawns],
    [campaign.heartbeat_misses], [campaign.shards_degraded],
    [campaign.shards_completed]) are recorded in the
    {!Sttc_obs.Metrics} registry — pre-seeded to zero so the series
    exist even in an uneventful run. *)
