(** Declarative campaign manifests.

    A campaign is the cross product {e circuits x configs x algorithms
    x seeds}: the sweep shape the paper's Table I / Fig. 3 claims need
    at scale (thousands of protect runs across benchmarks, selection
    algorithms and seeds).  The manifest is a JSON file — parsed with
    the {!Sttc_obs.Json} codec, no external dependency — that pins the
    whole sweep declaratively, so the supervisor, every worker process
    and a later [--resume] all derive {e exactly} the same run list and
    shard assignment from the same bytes.

    Schema (fields marked [?] are optional):

    {v
    {
      "name": "quick-sweep",
      "circuits": ["s27", "s641"],
      "algorithms": ["dependent",
                     {"name": "independent", "count": 5},
                     {"name": "parametric", "clock_factor": 1.08}],
      "configs":  [{"label": "plain"},                            ?
                   {"label": "hardened", "harden": true,
                    "fraction": 0.05}],
      "seeds": [1, 2, 3],            // or {"base": 1, "count": 100}
      "shards": 4,                   ?  // default 1
      "timeout_s": 60.0,             ?  // per-run wall budget
      "retries": 2,                  ?  // per-shard retry budget
      "heartbeat_timeout_s": 60.0,   ?  // worker liveness watchdog
      "attempt_timeout_s": 1800.0,   ?  // per-attempt wall watchdog
      "backend": "tvd"               ?  // protection backend; default "stt"
    }
    v}

    [algorithms] defaults to the paper's three; [configs] to one plain
    entry. *)

type config = {
  label : string;  (** row tag; unique within the manifest *)
  fraction : float option;  (** selection-fraction override *)
  harden : bool;  (** Section IV-A.3 hardening (2 dummy inputs + absorb) *)
}

val default_config : config
(** [{ label = "default"; fraction = None; harden = false }] *)

val config_to_json : config -> Sttc_obs.Json.t
val config_of_json : ?default_label:string -> Sttc_obs.Json.t -> (config, string) result
(** The per-run protect-config codec, shared with serve requests:
    [{"label"?, "fraction"?, "harden"?}].  A missing [label] takes
    [default_label] (default ["default"]; the manifest parser passes the
    positional ["config-<i>"]). *)

type t = {
  name : string;
  circuits : string list;
  algorithms : Sttc_core.Flow.algorithm list;
  configs : config list;
  seeds : int list;
  shards : int;
  timeout_s : float option;
  retries : int;
      (** how many times a failed shard attempt is retried before the
          shard degrades to a footnoted partial result *)
  heartbeat_timeout_s : float;
      (** a worker whose heartbeat file stops changing for this long is
          presumed hung and killed *)
  attempt_timeout_s : float option;
      (** hard wall-clock watchdog per worker attempt *)
  backend : string;
      (** protection backend for every run
          ({!Sttc_backend.Backend.names}); default ["stt"], omitted from
          the JSON rendering at that default so historical manifests are
          byte-stable *)
}

val make :
  ?algorithms:Sttc_core.Flow.algorithm list ->
  ?configs:config list ->
  ?shards:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?heartbeat_timeout_s:float ->
  ?attempt_timeout_s:float ->
  ?backend:string ->
  name:string ->
  circuits:string list ->
  seeds:int list ->
  unit ->
  t
(** Programmatic construction with the same defaults as the JSON
    parser. *)

val validate : t -> (unit, string) result
(** Structural sanity: non-empty dimensions, known circuit names,
    unique config labels, [shards >= 1], [retries >= 0], positive
    watchdog budgets, known backend name. *)

(** {1 The run list}

    Runs are enumerated in one canonical order — circuits outermost,
    then configs, then algorithms, then seeds — and identified by their
    position in it.  Everything downstream (shard assignment,
    checkpoints, the aggregated report) keys on that index. *)

type run = {
  index : int;
  circuit : string;
  config : config;
  algorithm : Sttc_core.Flow.algorithm;
  seed : int;
}

val runs : t -> run list
val run_count : t -> int

(** {1 JSON codec and file IO} *)

val to_json : t -> Sttc_obs.Json.t
val of_json : Sttc_obs.Json.t -> (t, string) result

val to_string : t -> string
val of_string : string -> (t, string) result
(** [of_string] validates ({!validate}) after parsing. *)

val save : string -> t -> unit
(** Atomic write (temp + rename) of the canonical rendering. *)

val load : string -> (t, string) result
