module Runner = Sttc_experiments.Runner
module Metrics = Sttc_obs.Metrics
module Flow = Sttc_core.Flow

type outcome = { computed : int; restored : int; failed : int }

let kill_injection_env = "STTC_CAMPAIGN_KILL"

(* Section IV-A.3 hardening as a single manifest switch. *)
let hardened = { Flow.extra_inputs_per_lut = 2; absorb_drivers = true }

let kill_after ~shard =
  match Sys.getenv_opt kill_injection_env with
  | None -> None
  | Some spec -> (
      match String.split_on_char ':' spec with
      | [ s; n ] -> (
          match (int_of_string_opt s, int_of_string_opt n) with
          | Some s, Some n when s = shard && n >= 0 -> Some n
          | _ -> None)
      | _ -> None)

let run ?(allow_kill_injection = false) ~dir ~shard ~attempt () =
  match Manifest.load (Shard.manifest_path dir) with
  | Error e -> Error e
  | Ok m ->
      if shard < 0 || shard >= m.Manifest.shards then
        Error
          (Printf.sprintf "worker: shard %d out of range [0, %d)" shard
             m.Manifest.shards)
      else (
        Sttc_obs.Obs.enable ();
        let backend = Sttc_backend.Backend.find_exn m.Manifest.backend in
        let plan = Shard.assign m ~shard in
        let prior = Shard.load_checkpoint ~dir ~shard in
        let find_prior idx =
          List.find_opt (fun (r : Shard.row) -> r.index = idx) prior
        in
        let kill_at =
          if allow_kill_injection && attempt = 1 then kill_after ~shard
          else None
        in
        let beats = ref 0 in
        let bump () =
          incr beats;
          Sttc_obs.Export.write_text
            (Shard.heartbeat_path ~dir shard)
            (Printf.sprintf "%d.%d\n" attempt !beats)
        in
        bump ();
        let computed = ref 0 and restored = ref 0 in
        let rows = ref [] in
        List.iter
          (fun (r : Manifest.run) ->
            match find_prior r.index with
            | Some row ->
                incr restored;
                Metrics.incr "campaign.worker.restored_runs";
                rows := row :: !rows
            | None ->
                bump ();
                let result =
                  Runner.run_unit ?timeout_s:m.Manifest.timeout_s
                    ?fraction:r.config.fraction
                    ?hardening:(if r.config.harden then Some hardened else None)
                    ~backend ~seed:r.seed ~benchmark:r.circuit r.algorithm
                in
                rows := Shard.of_result r result :: !rows;
                incr computed;
                Metrics.incr "campaign.worker.runs";
                Shard.save_checkpoint ~dir ~shard (List.rev !rows);
                bump ();
                match kill_at with
                | Some n when !computed >= n ->
                    (* deterministic mid-shard crash for the CI gate *)
                    Unix.kill (Unix.getpid ()) Sys.sigkill
                | _ -> ())
          plan;
        let rows = List.rev !rows in
        Shard.save_result ~dir ~shard rows;
        Sttc_obs.Export.write_file
          (Shard.metrics_path ~dir shard)
          (Sttc_obs.Export.metrics_json_of_snapshot (Metrics.snapshot ()));
        let failed =
          List.length
            (List.filter
               (fun (r : Shard.row) ->
                 match r.outcome with Shard.Failed _ -> true | Shard.Done _ -> false)
               rows)
        in
        Ok { computed = !computed; restored = !restored; failed })
