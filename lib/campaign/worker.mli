(** The supervised unit of execution: one shard attempt in one process.

    A worker loads the manifest, derives its run list from the shard
    index alone, restores finished rows from the shard checkpoint, and
    executes the remaining runs through
    {!Sttc_experiments.Runner.run_unit} — checkpointing after every run
    and bumping the heartbeat file around it, so the supervisor can tell
    a slow run from a hung one and a SIGKILL costs at most the run in
    flight.

    Crash discipline: the worker never retries anything itself.  A
    per-run crash or timeout becomes a [Failed] row (the run is {e
    complete}, with a footnote); anything that kills the process is the
    supervisor's problem, and the checkpoint makes the next attempt
    incremental. *)

type outcome = {
  computed : int;  (** runs executed by this attempt *)
  restored : int;  (** rows restored from the checkpoint *)
  failed : int;  (** rows (restored or computed) that carry [Failed] *)
}

val run :
  ?allow_kill_injection:bool ->
  dir:string ->
  shard:int ->
  attempt:int ->
  unit ->
  (outcome, string) result
(** Execute one shard attempt to completion: write [shard-K.done], the
    shard metrics snapshot, and return the tally.  [Error] covers setup
    problems only (unreadable manifest, shard out of range) — per-run
    failures are data, not errors.

    Recording is enabled process-wide for the duration
    ({!Sttc_obs.Obs.enable}): the worker is the whole process, and its
    metrics snapshot is this shard's contribution to the campaign-wide
    merge.

    [allow_kill_injection] (default [false]) honours the
    [STTC_CAMPAIGN_KILL="SHARD:AFTER"] environment hook: on attempt 1
    of shard [SHARD], after [AFTER] newly computed runs, the worker
    SIGKILLs {e itself} — a deterministic mid-shard crash for the CI
    gate and the failure-path tests.  Only the [sttc worker] subcommand
    sets it; in-process callers must not (the "worker" would kill the
    host). *)

val kill_injection_env : string
(** ["STTC_CAMPAIGN_KILL"]. *)
