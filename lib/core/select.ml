module Netlist = Sttc_netlist.Netlist
module Transform = Sttc_netlist.Transform
module Paths = Sttc_analysis.Paths
module Sta = Sttc_analysis.Sta
module Metrics = Sttc_obs.Metrics

type context = {
  netlist : Netlist.t;
  library : Sttc_tech.Library.t;
  sta : Sta.t;
  paths : Paths.io_path list;
  incremental : bool;
  overlay : Transform.Overlay.t;
  trial : Sta.trial option;
  feeds_endpoint : bool array;
  target_mark : bool array;
}

let incremental_enabled () =
  match Sys.getenv_opt "STTC_FULL_STA" with
  | Some ("1" | "true" | "yes") -> false
  | _ -> true

(* Nodes inside some endpoint's combinational fanin cone: replacing a gate
   outside this set cannot move any endpoint arrival.  Iterative walk —
   scale-family netlists reach 10^6 nodes. *)
let endpoint_cone nl sta =
  let marked = Array.make (Netlist.node_count nl) false in
  let stack = Sttc_util.Growable.create () in
  List.iter
    (fun (ep, _) ->
      if not marked.(ep) then begin
        marked.(ep) <- true;
        ignore (Sttc_util.Growable.push stack ep)
      end)
    (Sta.endpoint_arrivals sta);
  while not (Sttc_util.Growable.is_empty stack) do
    let id = Sttc_util.Growable.pop stack in
    if Netlist.is_combinational (Netlist.kind nl id) then
      Array.iter
        (fun src ->
          if not marked.(src) then begin
            marked.(src) <- true;
            ignore (Sttc_util.Growable.push stack src)
          end)
        (Netlist.fanins nl id)
  done;
  marked

let prepare ~rng ?(fraction = 0.02) ?(min_ffs = 2) ?sta
    ?(incremental = incremental_enabled ()) library netlist =
  let sta =
    match sta with
    | Some s when Sta.netlist s == netlist -> s
    | Some _ | None -> Sta.analyze library netlist
  in
  let critical = Sta.critical_path sta in
  let paths =
    Paths.sample ~rng ~fraction ~min_ffs ~exclude_critical:critical netlist
  in
  {
    netlist;
    library;
    sta;
    paths;
    incremental;
    overlay = Transform.Overlay.create netlist;
    trial = (if incremental then Some (Sta.trial library sta) else None);
    feeds_endpoint = endpoint_cone netlist sta;
    target_mark = Array.make (Netlist.node_count netlist) false;
  }

let replaceable ctx path =
  List.filter
    (fun id ->
      match Netlist.kind ctx.netlist id with
      | Netlist.Gate _ -> true
      | _ -> false)
    path.Paths.nodes

let pool ctx =
  let seen = Hashtbl.create 64 in
  List.concat_map (fun p -> replaceable ctx p) ctx.paths
  |> List.filter (fun id ->
         if Hashtbl.mem seen id then false
         else begin
           Hashtbl.add seen id ();
           true
         end)

(* [sync ctx tr target] reconciles the persistent trial session with the
   requested replacement set: the overlay's staged set is diffed against
   [target] and only the delta is re-propagated, so a selection loop
   whose accumulated set grows into the hundreds still pays per query
   for the few gates that changed — not for the union cone.

   Gates outside every endpoint cone are staged but never propagated:
   their arrival changes cannot reach an endpoint, and neither the delay
   query nor the worst-path walk ever reads an arrival outside the
   endpoint cones (a cone is closed under combinational fanins, so a
   node inside never has a fanin outside).  A sync whose whole delta is
   skippable answers from the session's current heap at zero
   propagation cost (counter [select.timing_early_out]). *)
let sync ctx tr target =
  let ov = ctx.overlay in
  let mark = ctx.target_mark in
  List.iter
    (fun g ->
      if g < 0 || g >= Array.length mark then
        invalid_arg "Select: node id out of range";
      mark.(g) <- true)
    target;
  let removed =
    List.filter (fun g -> not mark.(g)) (Transform.Overlay.staged ov)
  in
  let added =
    List.filter (fun g -> not (Transform.Overlay.is_staged ov g)) target
  in
  List.iter (fun g -> mark.(g) <- false) target;
  match (added, removed) with
  | [], [] -> ()
  | _ -> (
      List.iter (Transform.Overlay.unstage ov) removed;
      Transform.Overlay.stage_all ov added;
      match
        List.filter
          (fun g -> ctx.feeds_endpoint.(g))
          (List.rev_append removed added)
      with
      | [] -> Metrics.incr "select.timing_early_out"
      | seeds ->
          ignore
            (Sta.trial_advance tr ~kind_of:(Transform.Overlay.kind ov) seeds))

let trial_critical ctx gates =
  match ctx.trial with
  | Some tr ->
      sync ctx tr gates;
      Sta.trial_current_critical tr
  | None ->
      let nl = Transform.replace_many ~keep_function:true ctx.netlist gates in
      let sta = Sta.analyze ctx.library nl in
      (Sta.critical_delay_ps sta, Sta.critical_path sta)

let timing_ok ctx ~clock_ps gates =
  match ctx.trial with
  | Some tr ->
      sync ctx tr gates;
      Sta.trial_current_delay_ps tr <= clock_ps
  | None -> (
      match gates with
      | [] -> Sta.critical_delay_ps ctx.sta <= clock_ps
      | _ ->
          let trial =
            Transform.replace_many ~keep_function:true ctx.netlist gates
          in
          let sta = Sta.analyze ctx.library trial in
          Sta.critical_delay_ps sta <= clock_ps)
