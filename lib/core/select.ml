module Netlist = Sttc_netlist.Netlist
module Paths = Sttc_analysis.Paths
module Sta = Sttc_analysis.Sta

type context = {
  netlist : Netlist.t;
  library : Sttc_tech.Library.t;
  sta : Sta.t;
  paths : Paths.io_path list;
}

let prepare ~rng ?(fraction = 0.02) ?(min_ffs = 2) library netlist =
  let sta = Sta.analyze library netlist in
  let critical = Sta.critical_path sta in
  let paths =
    Paths.sample ~rng ~fraction ~min_ffs ~exclude_critical:critical netlist
  in
  { netlist; library; sta; paths }

let replaceable ctx path =
  List.filter
    (fun id ->
      match Netlist.kind ctx.netlist id with
      | Netlist.Gate _ -> true
      | _ -> false)
    path.Paths.nodes

let pool ctx =
  let seen = Hashtbl.create 64 in
  List.concat_map (fun p -> replaceable ctx p) ctx.paths
  |> List.filter (fun id ->
         if Hashtbl.mem seen id then false
         else begin
           Hashtbl.add seen id ();
           true
         end)

let timing_ok ctx ~clock_ps gates =
  match gates with
  | [] -> Sta.critical_delay_ps ctx.sta <= clock_ps
  | _ ->
      let trial =
        Sttc_netlist.Transform.replace_many ~keep_function:true ctx.netlist
          gates
      in
      let sta = Sta.analyze ctx.library trial in
      Sta.critical_delay_ps sta <= clock_ps
