(** Attack-cost estimation — Equations (1), (2) and (3) of Section IV-A.

    All quantities are carried in the log domain ({!Sttc_util.Lognum})
    because dependent-selection costs reach 1e200+ test clocks.  Per-gate
    constants come from {!Sttc_logic.Gate_fn}: [alpha] (patterns to
    determine one independent missing gate) and [P] (candidate functions
    per missing gate), with the paper's published values as default. *)

type constants = {
  alpha : int -> float;  (** by fan-in *)
  p : int -> float;  (** by fan-in *)
}

val paper_constants : constants
(** alpha = 2.45 / 4.2 / 7.4 and P = 2.5 / 5.0 / 5.4 for 2-/3-/4-input. *)

val computed_constants : constants
(** Derived from the meaningful-gate similarity metric in this repo. *)

type report = {
  missing_gates : int;  (** M *)
  accessible_inputs : int;  (** I of Eq. (3) *)
  total_config_bits : int;
  n_indep : Sttc_util.Lognum.t;  (** Eq. (1) *)
  n_dep : Sttc_util.Lognum.t;  (** Eq. (2) *)
  n_bf : Sttc_util.Lognum.t;  (** Eq. (3) *)
  dependent_pairs : int;
      (** LUT pairs where one reaches the other combinationally — the
          dependency count motivating Eq. (2) *)
}

val evaluate :
  ?constants:constants ->
  Sttc_netlist.Netlist.t ->
  luts:Sttc_netlist.Netlist.node_id list ->
  report
(** Evaluate a hybrid (foundry view or programmed; only structure is
    used).  [D_i] is one plus the minimum number of flip-flops between
    LUT [i] and a primary output (a value must survive at least one
    capture to be observed). *)

val years_to_break : ?rate_hz:float -> Sttc_util.Lognum.t -> Sttc_util.Lognum.t
(** Test clocks to years at [rate_hz] (default 1e9, the paper's "one
    billion pattern application per second"). *)

val pp_report : Format.formatter -> report -> unit
