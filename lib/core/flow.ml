module Netlist = Sttc_netlist.Netlist
module Rng = Sttc_util.Rng

type algorithm =
  | Independent of { count : int }
  | Dependent
  | Parametric of Algorithms.parametric_options

let algorithm_name = function
  | Independent _ -> "independent"
  | Dependent -> "dependent"
  | Parametric _ -> "parametric"

let default_algorithms =
  [
    Independent { count = 5 };
    Dependent;
    Parametric Algorithms.default_parametric;
  ]

type result = {
  algorithm : algorithm;
  hybrid : Hybrid.t;
  security : Security.report;
  overhead : Ppa.overhead;
  selection_seconds : float;
}

type hardening = {
  extra_inputs_per_lut : int;
  absorb_drivers : bool;
}

let no_hardening = { extra_inputs_per_lut = 0; absorb_drivers = false }

let protect ?(seed = 1) ?(library = Sttc_tech.Library.cmos90)
    ?(fraction = 0.02) ?(hardening = no_hardening) algorithm netlist =
  if Netlist.gates netlist = [] then
    invalid_arg "Flow.protect: netlist has no CMOS gates";
  let rng = Rng.make (seed lxor Hashtbl.hash (algorithm_name algorithm)) in
  let (hybrid, _), selection_seconds =
    Sttc_util.Timing.time (fun () ->
        let ctx = Select.prepare ~rng ~fraction library netlist in
        let gates =
          match algorithm with
          | Independent { count } -> Algorithms.independent ~rng ~count ctx
          | Dependent -> Algorithms.dependent ~rng ctx
          | Parametric options -> Algorithms.parametric ~rng ~options ctx
        in
        let gates = if gates = [] then [ List.hd (Netlist.gates netlist) ] else gates in
        let absorb =
          if hardening.absorb_drivers then Expand.pick_absorptions netlist gates
          else []
        in
        let extra_inputs =
          if hardening.extra_inputs_per_lut > 0 then
            Expand.pick_extra_inputs ~rng
              ~per_lut:hardening.extra_inputs_per_lut netlist gates
          else []
        in
        (Hybrid.make ~extra_inputs ~absorb netlist gates, ctx))
  in
  let security =
    Security.evaluate (Hybrid.foundry_view hybrid) ~luts:(Hybrid.lut_ids hybrid)
  in
  let overhead =
    Ppa.evaluate library ~base:netlist ~hybrid:(Hybrid.programmed hybrid)
  in
  { algorithm; hybrid; security; overhead; selection_seconds }

let sign_off ?method_ result =
  match Hybrid.verify ?method_ result.hybrid with
  | Sttc_sim.Equiv.Equivalent -> true
  | Sttc_sim.Equiv.Different _ | Sttc_sim.Equiv.Inconclusive _ -> false

let pp_result fmt r =
  Format.fprintf fmt "%s on %s:@\n  %a@\n  %a@\n  selection took %s"
    (algorithm_name r.algorithm)
    (Netlist.design_name (Hybrid.original r.hybrid))
    Security.pp_report r.security Ppa.pp r.overhead
    (Sttc_util.Timing.format_min_sec r.selection_seconds)
