module Netlist = Sttc_netlist.Netlist
module Rng = Sttc_util.Rng
module Backend = Sttc_backend.Backend

type algorithm =
  | Independent of { count : int }
  | Dependent
  | Parametric of Algorithms.parametric_options

let algorithm_name = function
  | Independent _ -> "independent"
  | Dependent -> "dependent"
  | Parametric _ -> "parametric"

let default_algorithms =
  [
    Independent { count = 5 };
    Dependent;
    Parametric Algorithms.default_parametric;
  ]

module Json = Sttc_obs.Json

let algorithm_to_json = function
  | Dependent -> Json.String "dependent"
  | Independent { count } ->
      Json.Obj [ ("name", Json.String "independent"); ("count", Json.Int count) ]
  | Parametric opts ->
      Json.Obj
        [
          ("name", Json.String "parametric");
          ("clock_factor", Json.Float opts.clock_factor);
        ]

let json_mem name j = Option.value (Json.member name j) ~default:Json.Null

let algorithm_of_json j =
  let of_name ?count ?clock_factor = function
    | "dependent" -> Ok Dependent
    | "independent" -> Ok (Independent { count = Option.value count ~default:5 })
    | "parametric" ->
        let base = Algorithms.default_parametric in
        let clock_factor =
          Option.value clock_factor ~default:base.clock_factor
        in
        Ok (Parametric { base with clock_factor })
    | s -> Error ("unknown algorithm " ^ s)
  in
  match j with
  | Json.String s -> of_name s
  | Json.Obj _ -> (
      match Json.to_string_opt (json_mem "name" j) with
      | None -> Error "algorithm object without \"name\""
      | Some name ->
          let count = Json.to_int_opt (json_mem "count" j) in
          let clock_factor = Json.to_float_opt (json_mem "clock_factor" j) in
          of_name ?count ?clock_factor name)
  | _ -> Error "algorithm must be a string or an object"

type result = {
  algorithm : algorithm;
  hybrid : Hybrid.t;
  security : Security.report;
  overhead : Ppa.overhead;
  selection_seconds : float;
  lint : Sttc_lint.Diagnostic.t list;
  parametric_meta : Algorithms.parametric_meta option;
}

type hardening = {
  extra_inputs_per_lut : int;
  absorb_drivers : bool;
}

let no_hardening = { extra_inputs_per_lut = 0; absorb_drivers = false }

let protect ?(seed = 1) ?(library = Sttc_tech.Library.cmos90)
    ?(fraction = 0.02) ?(hardening = no_hardening) ?(semantic = false)
    ?(backend = Backend.stt) ?base_sta algorithm netlist =
  Sttc_obs.Span.with_ "flow.protect" ~cat:"core"
    ~attrs:
      [
        ("algorithm", algorithm_name algorithm);
        ("design", Netlist.design_name netlist);
      ]
  @@ fun () ->
  if Netlist.gates netlist = [] then
    invalid_arg "Flow.run: netlist has no CMOS gates";
  (* Hardening grows LUT configs past the replaced gate's own function,
     which a candidate-restricted cell (TVD) cannot realize. *)
  if
    Backend.restricted backend
    && (hardening.extra_inputs_per_lut > 0 || hardening.absorb_drivers)
  then
    invalid_arg
      ("Flow.run: hardening requires a free-function backend, not "
      ^ Backend.name backend);
  let rng = Rng.make (seed lxor Hashtbl.hash (algorithm_name algorithm)) in
  let (hybrid, meta, base_sta), selection_seconds =
    Sttc_util.Timing.time (fun () ->
        let ctx = Select.prepare ~rng ~fraction ?sta:base_sta library netlist in
        let gates, meta =
          match algorithm with
          | Independent { count } ->
              (Algorithms.independent ~rng ~count ctx, None)
          | Dependent -> (Algorithms.dependent ~rng ctx, None)
          | Parametric options ->
              let gates, meta =
                Algorithms.parametric_with_meta ~rng ~options ctx
              in
              (gates, Some meta)
        in
        (* Replacing a gate that reaches no primary output buys zero
           corruptibility (D_i of Eqs. 1-2 is infinite): drop such picks,
           which only arise from dead logic in the input netlist.  The
           [unobservable-lut] lint rule enforces the same invariant. *)
        let depth_to_po = Sttc_netlist.Query.sequential_depth_to_po netlist in
        let observable id = depth_to_po.(id) < max_int in
        let gates = List.filter observable gates in
        let meta =
          Option.map
            (fun m ->
              {
                m with
                Algorithms.closure_neighbours =
                  List.filter observable m.Algorithms.closure_neighbours;
              })
            meta
        in
        let gates =
          if gates <> [] then gates
          else
            match List.filter observable (Netlist.gates netlist) with
            | g :: _ -> [ g ]
            | [] -> [ List.hd (Netlist.gates netlist) ]
        in
        let absorb =
          if hardening.absorb_drivers then Expand.pick_absorptions netlist gates
          else []
        in
        let extra_inputs =
          if hardening.extra_inputs_per_lut > 0 then
            Expand.pick_extra_inputs ~rng
              ~per_lut:hardening.extra_inputs_per_lut netlist gates
          else []
        in
        (Hybrid.make ~extra_inputs ~absorb netlist gates, meta, ctx.Select.sta))
  in
  Sttc_obs.Metrics.(
    incr "flow.protects";
    incr ("backend.protect." ^ Backend.name backend);
    observe "flow.selection_seconds" selection_seconds);
  let obs_result r =
    Sttc_obs.Metrics.(
      incr ~by:(Netlist.gate_count netlist) "flow.gates";
      incr ~by:(Hybrid.lut_count r.hybrid) "flow.luts";
      incr ~by:(List.length r.lint) "flow.lint_diagnostics";
      incr ~by:r.security.Security.missing_gates "flow.missing_gates";
      incr ~by:r.security.Security.total_config_bits "flow.config_bits";
      observe "flow.area_overhead_pct" r.overhead.Ppa.area_pct;
      observe "flow.power_overhead_pct" r.overhead.Ppa.power_pct;
      observe "flow.delay_overhead_pct" r.overhead.Ppa.performance_pct;
      peak_gauge "flow.bf_keyspace_log10"
        (Sttc_util.Lognum.log10 r.security.Security.n_bf));
    r
  in
  (* Every protect run is statically checked: a malformed hybrid would
     silently produce wrong security numbers downstream. *)
  let lint =
    Sttc_lint.Structural.check ~library (Hybrid.programmed hybrid)
  in
  (match
     List.filter
       (fun d -> d.Sttc_lint.Diagnostic.severity = Sttc_lint.Diagnostic.Error)
       lint
   with
  | [] -> ()
  | d :: _ ->
      invalid_arg
        ("Flow.run: hybrid fails structural lint: "
        ^ Sttc_lint.Diagnostic.to_text d));
  (* Opt-in semantic gate: the Eq. 1 prover and its companions on the
     foundry view, with the true bitstream enabling the closure.  An
     error here means the protection is statically defeatable (all
     missing gates independently testable, or a keyspace collapse). *)
  let lint =
    if not semantic then lint
    else begin
      let sem =
        Sttc_lint.Semantic_rules.run
          (Sttc_lint.Semantic_rules.view
             ~luts:(Hybrid.lut_ids hybrid)
             ~configs:(Hybrid.bitstream hybrid)
             (Hybrid.foundry_view hybrid))
      in
      (match
         List.filter
           (fun d ->
             d.Sttc_lint.Diagnostic.severity = Sttc_lint.Diagnostic.Error)
           sem
       with
      | [] -> ()
      | d :: _ ->
          invalid_arg
            ("Flow.run: hybrid fails semantic lint: "
            ^ Sttc_lint.Diagnostic.to_text d));
      lint @ sem
    end
  in
  let security =
    Security.evaluate
      ~constants:{ Security.alpha = backend.Backend.alpha; p = backend.Backend.p }
      (Hybrid.foundry_view hybrid) ~luts:(Hybrid.lut_ids hybrid)
  in
  let overhead =
    (* The default backend prices with the caller's library as given (it
       may deliberately carry the SRAM style for the Section II
       comparison); any other backend forces its own cell technology. *)
    let eval_library =
      if backend == Backend.stt then library
      else Backend.eval_library backend library
    in
    let baseline = Ppa.baseline ~sta:base_sta eval_library netlist in
    Ppa.evaluate ~baseline eval_library ~base:netlist
      ~hybrid:(Hybrid.programmed hybrid)
  in
  obs_result
    {
      algorithm;
      hybrid;
      security;
      overhead;
      selection_seconds;
      lint;
      parametric_meta = meta;
    }

(* ---------- resilient protection ---------- *)

type rejection = {
  attempted : algorithm;
  attempt_seed : int;
  reason : string;
}

type resilient = {
  accepted : result;
  requested : algorithm;
  rejections : rejection list;
  degraded : bool;
}

let meets_timing algorithm (r : result) =
  match algorithm with
  | Parametric options ->
      let budget_pct = (options.Algorithms.clock_factor -. 1.) *. 100. in
      if r.overhead.Ppa.performance_pct <= budget_pct +. 1e-9 then Ok ()
      else
        Error
          (Printf.sprintf "timing missed: %.2f%% degradation > %.2f%% budget"
             r.overhead.Ppa.performance_pct budget_pct)
  | Independent _ | Dependent -> Ok ()

let degradation_chain = function
  | Parametric _ as p -> [ p; Dependent; Independent { count = 5 } ]
  | Dependent -> [ Dependent; Independent { count = 5 } ]
  | Independent _ as i -> [ i ]

let protect_resilient ?(seed = 1) ?library ?fraction ?hardening ?semantic
    ?backend ?base_sta ?(max_reseeds = 2) algorithm netlist =
  let rejections = ref [] in
  let reject attempted attempt_seed reason =
    rejections := { attempted; attempt_seed; reason } :: !rejections
  in
  let try_once alg attempt_seed =
    match
      protect ~seed:attempt_seed ?library ?fraction ?hardening ?semantic
        ?backend ?base_sta alg netlist
    with
    | r -> (
        match meets_timing alg r with
        | Ok () -> Some r
        | Error reason ->
            reject alg attempt_seed reason;
            None)
    | exception Invalid_argument reason ->
        reject alg attempt_seed reason;
        None
  in
  let rec try_algorithm alg reseed =
    if reseed > max_reseeds then None
    else
      match try_once alg (seed + reseed) with
      | Some r -> Some r
      | None -> try_algorithm alg (reseed + 1)
  in
  let rec down = function
    | [] ->
        invalid_arg
          ("Flow.run: all attempts failed: "
          ^ String.concat "; "
              (List.rev_map
                 (fun rj ->
                   Printf.sprintf "%s@%d: %s"
                     (algorithm_name rj.attempted)
                     rj.attempt_seed rj.reason)
                 !rejections))
    | alg :: rest -> (
        match try_algorithm alg 0 with
        | Some r -> r
        | None -> down rest)
  in
  let accepted = down (degradation_chain algorithm) in
  {
    accepted;
    requested = algorithm;
    rejections = List.rev !rejections;
    degraded = algorithm_name accepted.algorithm <> algorithm_name algorithm;
  }

(* ---------- unified entry point ---------- *)

type resilience = { max_reseeds : int }

let default_resilience = { max_reseeds = 2 }

type policy = Strict | Resilient of resilience

let run ?seed ?library ?fraction ?hardening ?semantic ?backend ?base_sta
    ~policy algorithm netlist =
  Sttc_obs.Span.with_ "flow.run" ~cat:"core"
    ~attrs:
      [
        ("algorithm", algorithm_name algorithm);
        ( "policy",
          match policy with Strict -> "strict" | Resilient _ -> "resilient" );
      ]
  @@ fun () ->
  match policy with
  | Strict ->
      let accepted =
        protect ?seed ?library ?fraction ?hardening ?semantic ?backend
          ?base_sta algorithm netlist
      in
      { accepted; requested = algorithm; rejections = []; degraded = false }
  | Resilient { max_reseeds } ->
      protect_resilient ?seed ?library ?fraction ?hardening ?semantic ?backend
        ?base_sta ~max_reseeds algorithm netlist

let lint_view ?(library = Sttc_tech.Library.cmos90) r =
  let algorithm =
    match r.algorithm with
    | Independent _ -> Sttc_lint.Security_rules.Independent
    | Dependent -> Sttc_lint.Security_rules.Dependent
    | Parametric _ -> Sttc_lint.Security_rules.Parametric
  in
  let clock_factor =
    match r.algorithm with
    | Parametric options -> options.Algorithms.clock_factor
    | Independent _ | Dependent -> 1.08
  in
  let meta =
    Option.map
      (fun m ->
        {
          Sttc_lint.Security_rules.usl = m.Algorithms.usl;
          neighbours = m.Algorithms.closure_neighbours;
        })
      r.parametric_meta
  in
  Sttc_lint.Security_rules.view ~algorithm ?meta
    ~original:(Hybrid.original r.hybrid) ~library ~clock_factor
    ~foundry:(Hybrid.foundry_view r.hybrid)
    ~luts:(Hybrid.lut_ids r.hybrid) ()

let lint_security ?library ?only r =
  Sttc_lint.Security_rules.run ?only (lint_view ?library r)

let sign_off ?method_ result =
  match Hybrid.verify ?method_ result.hybrid with
  | Sttc_sim.Equiv.Equivalent -> true
  | Sttc_sim.Equiv.Different _ | Sttc_sim.Equiv.Inconclusive _ -> false

let pp_result fmt r =
  Format.fprintf fmt "%s on %s:@\n  %a@\n  %a@\n  selection took %s"
    (algorithm_name r.algorithm)
    (Netlist.design_name (Hybrid.original r.hybrid))
    Security.pp_report r.security Ppa.pp r.overhead
    (Sttc_util.Timing.format_min_sec r.selection_seconds)

let pp_resilient fmt r =
  if r.rejections <> [] then begin
    Format.fprintf fmt "degradation chain (requested %s):@\n"
      (algorithm_name r.requested);
    List.iter
      (fun rj ->
        Format.fprintf fmt "  rejected %s (seed %d): %s@\n"
          (algorithm_name rj.attempted) rj.attempt_seed rj.reason)
      r.rejections
  end;
  Format.fprintf fmt "%s%a"
    (if r.degraded then "DEGRADED to " ^ algorithm_name r.accepted.algorithm ^ ": "
     else "")
    pp_result r.accepted
