module Netlist = Sttc_netlist.Netlist
module Paths = Sttc_analysis.Paths
module Sta = Sttc_analysis.Sta
module Rng = Sttc_util.Rng

let independent ~rng ?(count = 5) ctx =
  if count < 1 then invalid_arg "Algorithms.independent: count";
  let candidates = Array.of_list (Select.pool ctx) in
  let candidates =
    if Array.length candidates >= count then candidates
    else
      (* paths too sparse (tiny circuits): widen to the full gate set *)
      Array.of_list (Netlist.gates ctx.Select.netlist)
  in
  Array.to_list (Rng.sample rng count candidates)

let dependent ~rng ctx =
  ignore rng;
  (* Algorithm 1: the deepest non-critical I/O path; all gates of its
     composing timing paths become reconfigurable units. *)
  match ctx.Select.paths with
  | [] ->
      (* no multi-FF path: degrade to the longest combinational run we can
         find — the deepest remaining path in the sample is absent, so use
         the whole gate pool of a fresh walk, or finally any gate chain *)
      Netlist.gates ctx.Select.netlist |> fun gates ->
      (match gates with
      | [] -> invalid_arg "Algorithms.dependent: no gates"
      | g :: _ -> Sttc_netlist.Query.fanin_cone ctx.Select.netlist g)
      |> List.filter (fun id ->
             match Netlist.kind ctx.Select.netlist id with
             | Netlist.Gate _ -> true
             | _ -> false)
  | best :: _ -> Select.replaceable ctx best

type parametric_options = {
  clock_factor : float;
  n_paths : int option;
  select_fraction : float;
  max_retries : int;
}

let default_parametric =
  { clock_factor = 1.08; n_paths = None; select_fraction = 0.35; max_retries = 6 }

type parametric_meta = {
  usl : Netlist.node_id list;
  closure_neighbours : Netlist.node_id list;
}

let parametric_with_meta ~rng ?(options = default_parametric) ctx =
  let nl = ctx.Select.netlist in
  let clock_ps =
    options.clock_factor *. Sta.critical_delay_ps ctx.Select.sta
  in
  (* The unit of selection is the timing path (FF-to-FF / PI-to-FF /
     FF-to-PO segment), per the end of Section IV-A: "randomly select a
     pre-determined number of timing paths and select a pre-determined
     number of random nodes within that timing path". *)
  let n_segments =
    match options.n_paths with
    | Some n -> max 1 n
    | None -> max 3 (Netlist.gate_count nl / 1200)
  in
  let all_segments =
    List.concat_map (fun p -> Paths.segments nl p) ctx.Select.paths
    |> List.filter (fun s -> s.Paths.gates <> [])
  in
  let chosen_segments =
    let arr = Array.of_list all_segments in
    if Array.length arr = 0 then [||] else Rng.sample rng n_segments arr
  in
  let module Int_set = Set.Make (Int) in
  let on_chosen_io_paths =
    Array.fold_left
      (fun acc s ->
        List.fold_left (fun acc id -> Int_set.add id acc) acc s.Paths.gates)
      Int_set.empty chosen_segments
  in
  let replaced = ref Int_set.empty in
  let usl = ref Int_set.empty in
  let eligible seg_gates =
    List.filter
      (fun id ->
        match Netlist.kind nl id with
        | Netlist.Gate fn -> Sttc_logic.Gate_fn.arity fn >= 2
        | _ -> false)
      seg_gates
  in
  Array.iter
    (fun seg ->
      let gates = eligible seg.Paths.gates in
      match gates with
      | [] -> ()
      | _ ->
          let arr = Array.of_list gates in
          (* L1: draw, shrink on timing violation *)
          let rec attempt retries want =
            if want = 0 || retries > options.max_retries then []
            else
              let pick = Array.to_list (Rng.sample rng want arr) in
              let trial =
                Int_set.elements (Int_set.union !replaced (Int_set.of_list pick))
              in
              if Select.timing_ok ctx ~clock_ps trial then pick
              else attempt (retries + 1) (max 0 (want - 1))
          in
          let want =
            max 1
              (int_of_float
                 (options.select_fraction *. float_of_int (Array.length arr)))
          in
          let pick = attempt 0 want in
          replaced := Int_set.union !replaced (Int_set.of_list pick);
          let picked = Int_set.of_list pick in
          List.iter
            (fun id ->
              match Netlist.kind nl id with
              | Netlist.Gate _ ->
                  if not (Int_set.mem id picked) then usl := Int_set.add id !usl
              | _ -> ())
            seg.Paths.gates)
    chosen_segments;
  (* USL closure: replace immediate neighbours (drivers and driven gates)
     of every unselected gate, provided they are CMOS gates off the chosen
     I/O paths. *)
  let closure = ref Int_set.empty in
  Int_set.iter
    (fun g ->
      let neighbours =
        Array.to_list (Netlist.fanins nl g) @ Netlist.fanouts nl g
      in
      List.iter
        (fun nb ->
          if not (Int_set.mem nb on_chosen_io_paths) then
            match Netlist.kind nl nb with
            | Netlist.Gate _ ->
                replaced := Int_set.add nb !replaced;
                closure := Int_set.add nb !closure
            | _ -> ())
        neighbours)
    !usl;
  (* The USL closure is unconditional in Algorithm 2, but the whole point
     of the parametric-aware method is to "minimize the impact and
     possibly avoid violating timing": repair any violation the closure
     introduced by dropping replaced gates from the freshly critical path
     until the constraint holds again. *)
  let repair_budget = ref (Int_set.cardinal !replaced) in
  let violated set =
    not (Select.timing_ok ctx ~clock_ps (Int_set.elements set))
  in
  while (not (Int_set.is_empty !replaced)) && !repair_budget > 0 && violated !replaced do
    decr repair_budget;
    let _, critical = Select.trial_critical ctx (Int_set.elements !replaced) in
    let on_critical =
      List.filter (fun id -> Int_set.mem id !replaced) critical
    in
    match on_critical with
    | [] -> repair_budget := 0 (* violation not caused by our LUTs *)
    | worst :: _ -> replaced := Int_set.remove worst !replaced
  done;
  (* Tiny circuits can end with an empty pick (every draw violated
     timing); guarantee at least one replacement on an off-path gate. *)
  if Int_set.is_empty !replaced then begin
    let gates = Array.of_list (Netlist.gates nl) in
    if Array.length gates > 0 then
      replaced := Int_set.singleton (Rng.pick rng gates)
  end;
  (* The timing-repair loop may have dropped closure gates again; the
     metadata only records the neighbours that survived into the final
     replacement set, so downstream checks re-verify exactly what the
     hybrid is supposed to contain. *)
  let meta =
    {
      usl = Int_set.elements !usl;
      closure_neighbours = Int_set.elements (Int_set.inter !closure !replaced);
    }
  in
  (Int_set.elements !replaced, meta)

let parametric ~rng ?options ctx = fst (parametric_with_meta ~rng ?options ctx)
