module Sta = Sttc_analysis.Sta
module Power = Sttc_analysis.Power
module Area = Sttc_analysis.Area
module Netlist = Sttc_netlist.Netlist

type overhead = {
  performance_pct : float;
  power_pct : float;
  area_pct : float;
  n_stts : int;
  base_delay_ps : float;
  hybrid_delay_ps : float;
  base_power_uw : float;
  hybrid_power_uw : float;
  base_area_um2 : float;
  hybrid_area_um2 : float;
}

let evaluate lib ~base ~hybrid =
  let sta_b = Sta.analyze lib base and sta_h = Sta.analyze lib hybrid in
  let pow_b = Power.estimate lib base and pow_h = Power.estimate lib hybrid in
  let area_b = Area.estimate lib base and area_h = Area.estimate lib hybrid in
  let rel = Sttc_util.Stats.relative_overhead in
  {
    performance_pct =
      rel ~base:(Sta.critical_delay_ps sta_b)
        ~modified:(Sta.critical_delay_ps sta_h);
    power_pct = rel ~base:pow_b.Power.total_uw ~modified:pow_h.Power.total_uw;
    area_pct = rel ~base:area_b.Area.total_um2 ~modified:area_h.Area.total_um2;
    n_stts = List.length (Netlist.luts hybrid);
    base_delay_ps = Sta.critical_delay_ps sta_b;
    hybrid_delay_ps = Sta.critical_delay_ps sta_h;
    base_power_uw = pow_b.Power.total_uw;
    hybrid_power_uw = pow_h.Power.total_uw;
    base_area_um2 = area_b.Area.total_um2;
    hybrid_area_um2 = area_h.Area.total_um2;
  }

let pp fmt o =
  Format.fprintf fmt
    "overhead: perf %.2f%% (%.0f -> %.0f ps), power %.2f%% (%.1f -> %.1f uW), \
     area %.2f%% (%.0f -> %.0f um2), %d STT LUTs"
    o.performance_pct o.base_delay_ps o.hybrid_delay_ps o.power_pct
    o.base_power_uw o.hybrid_power_uw o.area_pct o.base_area_um2
    o.hybrid_area_um2 o.n_stts
