module Sta = Sttc_analysis.Sta
module Activity = Sttc_analysis.Activity
module Power = Sttc_analysis.Power
module Area = Sttc_analysis.Area
module Netlist = Sttc_netlist.Netlist

type overhead = {
  performance_pct : float;
  power_pct : float;
  area_pct : float;
  n_stts : int;
  base_delay_ps : float;
  hybrid_delay_ps : float;
  base_power_uw : float;
  hybrid_power_uw : float;
  base_area_um2 : float;
  hybrid_area_um2 : float;
}

type baseline = {
  b_netlist : Netlist.t;
  b_sta : Sta.t;
  b_activity : Activity.t;
  b_power : Power.report;
  b_area : Area.report;
}

let baseline ?sta lib nl =
  let b_sta =
    match sta with
    | Some s when Sta.netlist s == nl -> s
    | Some _ | None -> Sta.analyze lib nl
  in
  let b_activity = Activity.analyze nl in
  {
    b_netlist = nl;
    b_sta;
    b_activity;
    b_power = Power.estimate ~activity:b_activity lib nl;
    b_area = Area.estimate lib nl;
  }

let evaluate ?baseline:b lib ~base ~hybrid =
  let bl =
    match b with
    | Some bl when bl.b_netlist == base -> bl
    | Some _ | None -> baseline lib base
  in
  let sta_h, act_h =
    if Select.incremental_enabled () then
      ( Sta.retime lib bl.b_sta hybrid ~changed:[],
        Activity.refine bl.b_activity hybrid ~changed:[] )
    else (Sta.analyze lib hybrid, Activity.analyze hybrid)
  in
  let pow_h = Power.estimate ~activity:act_h lib hybrid in
  let area_h = Area.estimate lib hybrid in
  let rel = Sttc_util.Stats.relative_overhead in
  {
    performance_pct =
      rel
        ~base:(Sta.critical_delay_ps bl.b_sta)
        ~modified:(Sta.critical_delay_ps sta_h);
    power_pct =
      rel ~base:bl.b_power.Power.total_uw ~modified:pow_h.Power.total_uw;
    area_pct =
      rel ~base:bl.b_area.Area.total_um2 ~modified:area_h.Area.total_um2;
    n_stts = List.length (Netlist.luts hybrid);
    base_delay_ps = Sta.critical_delay_ps bl.b_sta;
    hybrid_delay_ps = Sta.critical_delay_ps sta_h;
    base_power_uw = bl.b_power.Power.total_uw;
    hybrid_power_uw = pow_h.Power.total_uw;
    base_area_um2 = bl.b_area.Area.total_um2;
    hybrid_area_um2 = area_h.Area.total_um2;
  }

let pp fmt o =
  Format.fprintf fmt
    "overhead: perf %.2f%% (%.0f -> %.0f ps), power %.2f%% (%.1f -> %.1f uW), \
     area %.2f%% (%.0f -> %.0f um2), %d STT LUTs"
    o.performance_pct o.base_delay_ps o.hybrid_delay_ps o.power_pct
    o.base_power_uw o.hybrid_power_uw o.area_pct o.base_area_um2
    o.hybrid_area_um2 o.n_stts
