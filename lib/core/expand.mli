(** Search-space expansion for missing gates (Section IV-A.3).

    Two measures inflate the attacker's candidate space per LUT:
    connecting {e unused inputs} to unrelated circuit signals (a k-input
    LUT that might implement any function of any subset of its inputs),
    and realizing {e complex multi-gate functions} in one LUT.  This
    module picks the wirings; [Hybrid.make] applies them. *)

val pick_extra_inputs :
  rng:Sttc_util.Rng.t ->
  per_lut:int ->
  Sttc_netlist.Netlist.t ->
  Sttc_netlist.Netlist.node_id list ->
  (Sttc_netlist.Netlist.node_id * Sttc_netlist.Netlist.node_id list) list
(** For each selected gate, up to [per_lut] extra signals that (a) are not
    already fanins, (b) do not create combinational cycles, and (c) keep
    the total arity within [Truth.max_arity].  Gates with no room get no
    entry. *)

val pick_absorptions :
  Sttc_netlist.Netlist.t ->
  Sttc_netlist.Netlist.node_id list ->
  (Sttc_netlist.Netlist.node_id * Sttc_netlist.Netlist.node_id) list
(** For each selected gate, a single-fanout driver gate that can be merged
    into it ([Transform.absorbable_driver]); drivers that are themselves
    selected are skipped (they will be LUTs of their own). *)
