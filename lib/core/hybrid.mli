(** Hybrid STT-CMOS designs: a base CMOS netlist with a chosen set of gates
    replaced by reconfigurable STT LUT slots, plus the secret configuration
    bitstream that restores the original functionality.

    Three views exist of the same design:
    - the {e original} all-CMOS netlist,
    - the {e foundry view}, where every replaced gate is an unconfigured
      LUT (what an untrusted fab or reverse engineer sees),
    - the {e programmed} view, the foundry view with the bitstream
      installed (what ships after the design house configures it). *)

type t

val make :
  ?extra_inputs:(Sttc_netlist.Netlist.node_id * Sttc_netlist.Netlist.node_id list) list ->
  ?absorb:(Sttc_netlist.Netlist.node_id * Sttc_netlist.Netlist.node_id) list ->
  Sttc_netlist.Netlist.t ->
  Sttc_netlist.Netlist.node_id list ->
  t
(** [make nl gates] replaces each listed gate with an STT LUT slot and
    records the truth table that restores its function.  Two search-space
    expansions from Section IV-A.3 are available per selected gate:
    [extra_inputs] wires additional (logically ignored) inputs into
    specific LUTs, and [absorb] lists [(gate, driver)] pairs whose LUT
    realizes the {e complex function} gate-composed-with-driver in a
    single reconfigurable unit.  Raises [Invalid_argument] if a listed
    node is not a CMOS gate, an extra input would create a combinational
    cycle, or an absorb pair violates [Transform.absorb_driver]'s
    preconditions. *)

val original : t -> Sttc_netlist.Netlist.t
val foundry_view : t -> Sttc_netlist.Netlist.t
val programmed : t -> Sttc_netlist.Netlist.t

val lut_ids : t -> Sttc_netlist.Netlist.node_id list
val lut_count : t -> int

val bitstream : t -> (Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t) list
(** The secret.  One entry per LUT, in id order. *)

val bitstream_bits : t -> int
(** Total configuration bits (sum of [2^arity]). *)

val program_with :
  t -> (Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t) list -> Sttc_netlist.Netlist.t
(** Program the foundry view with an arbitrary candidate bitstream (used
    by attacks to test hypotheses). *)

val verify : ?method_:[ `Random of int | `Sat | `Bdd ] -> t -> Sttc_sim.Equiv.result
(** Sign-off check: programmed view equivalent to the original.
    Default [`Sat]. *)
