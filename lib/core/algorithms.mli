(** The paper's three CMOS-gate selection algorithms.

    Each returns the list of gate ids to replace with STT LUTs; feeding
    the result to [Hybrid.make] produces the hybrid netlist. *)

val independent :
  rng:Sttc_util.Rng.t -> ?count:int -> Select.context -> Sttc_netlist.Netlist.node_id list
(** Independent selection (Section IV-A.1): [count] gates (paper default
    5) drawn at random from the nodes of the sampled I/O paths, with no
    dependency requirement.  Falls back to the whole gate population if
    the paths provide too few candidates; returns fewer than [count] only
    when the circuit itself is smaller. *)

val dependent :
  rng:Sttc_util.Rng.t -> Select.context -> Sttc_netlist.Netlist.node_id list
(** Dependent selection (Algorithm 1): take the deepest sampled
    non-critical I/O path and replace {e all} gates on its composing
    timing paths, so that missing gates feed missing gates. *)

type parametric_options = {
  clock_factor : float;
      (** timing constraint as a multiple of the baseline critical delay
          (default 1.08: up to 8 % degradation allowed, matching the
          worst parametric rows of Table I) *)
  n_paths : int option;
      (** how many sampled I/O paths to draw timing paths from;
          [None] picks [max 1 (gate_count / 1500)] *)
  select_fraction : float;
      (** fraction of eligible (fan-in >= 2) gates initially drawn per
          timing path (default 0.35) *)
  max_retries : int;  (** re-draws per timing path on violation (default 6) *)
}

val default_parametric : parametric_options

type parametric_meta = {
  usl : Sttc_netlist.Netlist.node_id list;
      (** unselected gates of the chosen timing paths (Algorithm 2's
          USL) *)
  closure_neighbours : Sttc_netlist.Netlist.node_id list;
      (** off-path neighbourhood gates the USL closure replaced, after
          timing repair — the set the [missing-neighbour] lint rule
          re-verifies against the hybrid *)
}

val parametric_with_meta :
  rng:Sttc_util.Rng.t ->
  ?options:parametric_options ->
  Select.context ->
  Sttc_netlist.Netlist.node_id list * parametric_meta
(** Like {!parametric} but also returns the selection metadata consumed
    by the {!Sttc_lint.Security_rules} pack. *)

val parametric :
  rng:Sttc_util.Rng.t ->
  ?options:parametric_options ->
  Select.context ->
  Sttc_netlist.Netlist.node_id list
(** Parametric-aware dependent selection (Algorithm 2): per chosen timing
    path, draw random fan-in >= 2 gates and re-draw smaller subsets while
    the timing constraint is violated; every unselected gate of the path
    goes to the USL, and afterwards each gate driving or driven by a USL
    gate — but itself not on the chosen I/O paths — is also replaced. *)
