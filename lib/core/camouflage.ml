module Netlist = Sttc_netlist.Netlist
module Gate_fn = Sttc_logic.Gate_fn
module Lognum = Sttc_util.Lognum
module Rng = Sttc_util.Rng

let candidate_functions = [ Gate_fn.Nand 2; Gate_fn.Nor 2; Gate_fn.Xnor 2 ]
let candidates_per_cell = List.length candidate_functions

type t = {
  hybrid : Hybrid.t;
  cells : Netlist.node_id list;
}

let eligible nl =
  List.filter
    (fun id ->
      match Netlist.kind nl id with
      | Netlist.Gate fn -> List.mem fn candidate_functions
      | _ -> false)
    (Netlist.gates nl)

let make nl cells =
  let ok = eligible nl in
  List.iter
    (fun id ->
      if not (List.mem id ok) then
        invalid_arg "Camouflage.make: gate is not a camouflageable cell")
    cells;
  { hybrid = Hybrid.make nl cells; cells }

let random ~rng ~count nl =
  let pool = Array.of_list (eligible nl) in
  if Array.length pool = 0 then
    invalid_arg "Camouflage.random: no eligible cells";
  make nl (Array.to_list (Rng.sample rng count pool))

let cell_count t = List.length t.cells
let hybrid t = t.hybrid

let search_space t =
  Lognum.pow (Lognum.of_int candidates_per_cell) (cell_count t)

let sat_candidates t =
  let tables = List.map Gate_fn.truth candidate_functions in
  List.map (fun id -> (id, tables)) t.cells
