(** Post-fabrication configuration — the step that closes the paper's
    threat model: the foundry ships unconfigured parts, the design house
    (or an authorized vendor) programs the STT LUTs and only then does the
    chip compute anything useful.

    This module handles the bitstream as an artefact: a stable text
    serialization keyed by LUT instance names (robust against node
    renumbering across file round-trips), and the programming-cost model
    derived from the technology constants (MTJ writes are the expensive
    operation of the technology, but happen once per part). *)

type entry = {
  lut_name : string;
  config : Sttc_logic.Truth.t;
}

val of_hybrid : Hybrid.t -> entry list
(** Name-keyed form of the secret bitstream, in LUT id order. *)

val to_string : entry list -> string
(** One line per LUT: [name rows], e.g. ["u42 0110"], preceded by a
    comment header. *)

val parse : string -> entry list
(** Inverse of {!to_string}.  Raises [Failure] with a line number on
    malformed input. *)

val apply :
  Sttc_netlist.Netlist.t -> entry list -> Sttc_netlist.Netlist.t
(** Program a foundry-view netlist (matching LUTs by name).  Raises
    [Invalid_argument] when a named LUT is missing, is not a LUT, has the
    wrong arity, or when unconfigured LUTs remain afterwards. *)

type cost = {
  mtj_cells : int;  (** total configuration bits written *)
  write_energy_nj : float;
  write_time_us : float;
      (** serial programming, one cell at a time — worst case *)
  verify_cycles : int;
      (** read-back cycles to confirm the configuration *)
}

val programming_cost : Hybrid.t -> cost
val pp_cost : Format.formatter -> cost -> unit
