(** Post-fabrication configuration — the step that closes the paper's
    threat model: the foundry ships unconfigured parts, the design house
    (or an authorized vendor) programs the STT LUTs and only then does the
    chip compute anything useful.

    This module handles the bitstream as an artefact: a stable text
    serialization keyed by LUT instance names (robust against node
    renumbering across file round-trips), the programming-cost model
    derived from the technology constants (MTJ writes are the expensive
    operation of the technology, but happen once per part) — and the
    {e resilient} programming flow: MTJ writes are stochastic, so
    {!program} runs a program-verify-retry loop against an explicit
    {!Sttc_fault.Mtj.channel}, optionally escalating the write current,
    remapping unprogrammable rows to spare cells and protecting each LUT
    with a SECDED code, and classifies the result instead of raising. *)

type entry = {
  lut_name : string;
  config : Sttc_logic.Truth.t;
}

val of_hybrid : Hybrid.t -> entry list
(** Name-keyed form of the secret bitstream, in LUT id order. *)

val to_string : entry list -> string
(** One line per LUT: [name rows], e.g. ["u42 0110"], preceded by a
    comment header. *)

val parse : string -> entry list
(** Inverse of {!to_string}.  Tolerates trailing whitespace, blank lines
    and CRLF line endings.  Raises [Failure] — always with a
    ["bitstream:<line>:"] prefix, never any other exception — on
    malformed rows, non-power-of-two row counts, oversized tables and
    duplicate LUT names. *)

val parse_result : string -> (entry list, string) result
(** Non-raising {!parse}. *)

val apply :
  Sttc_netlist.Netlist.t -> entry list -> Sttc_netlist.Netlist.t
(** Program a foundry-view netlist (matching LUTs by name) through an
    ideal write channel.  Raises [Invalid_argument] when a named LUT is
    missing, is not a LUT, has the wrong arity, or when unconfigured LUTs
    remain afterwards.  {!program} is the fault-aware equivalent. *)

type cost = {
  mtj_cells : int;  (** total configuration bits written *)
  cell_noun : string;
      (** the backend's word for one programmable cell ("MTJ", "TVD") *)
  write_energy_nj : float;
  write_time_us : float;
      (** serial programming, one cell at a time — worst case *)
  verify_cycles : int;
      (** read-back cycles to confirm the configuration *)
}

val programming_cost : ?backend:Sttc_backend.Backend.t -> Hybrid.t -> cost
(** Ideal-channel cost: one write and one verify per configuration bit,
    priced with the backend's per-cell write energy/time (default
    {!Sttc_backend.Backend.stt}). *)

val pp_cost : Format.formatter -> cost -> unit

(** {1 Resilient programming} *)

type resilience = {
  retry_budget : int;
      (** extra write attempts per cell after a failed verify (0 = one
          shot, the legacy behaviour) *)
  escalate : bool;
      (** raise the write current on each retry — divides the transient
          error rate and multiplies the per-write energy by the channel's
          escalation gain *)
  ecc : bool;
      (** store a per-LUT SECDED parity word ({!Sttc_fault.Ecc}) in extra
          MTJ cells; one bad cell per LUT is then corrected at read-out *)
  spare_rows : int;
      (** spare MTJ cells per LUT; a row whose cell stays wrong through
          the whole retry budget is remapped to a spare *)
}

val no_resilience : resilience
(** [{ retry_budget = 0; escalate = false; ecc = false; spare_rows = 0 }] *)

val default_resilience : resilience
(** [{ retry_budget = 3; escalate = true; ecc = true; spare_rows = 2 }] *)

type failure_cause =
  | Missing_lut of string  (** bitstream names a node the netlist lacks *)
  | Not_a_lut of string
  | Arity_mismatch of { lut_name : string; expected : int; got : int }
  | Duplicate_entry of string
  | Unconfigured of string list
      (** LUT slots the bitstream never mentions *)
  | Unprogrammable of (string * int) list
      (** (LUT, row) cells still wrong after retries, spares and ECC *)

val failure_to_string : failure_cause -> string

type outcome =
  | Programmed  (** the exact bitstream is stored *)
  | Degraded of { corrected_bits : int; spared_bits : int }
      (** the stored image differs from the bitstream, but ECC
          correction and/or spare-row remapping restore every
          configuration bit at read-out — the part is shippable *)
  | Failed of failure_cause

type program_report = {
  outcome : outcome;
  view : Sttc_netlist.Netlist.t option;
      (** the effective programmed view (after ECC correction and spare
          remapping) — present even for [Failed Unprogrammable], where it
          carries the wrong bits, so experiments can measure the damage;
          [None] only for structural failures *)
  retried_bits : int;  (** cells that needed at least one rewrite *)
  corrected_bits : int;  (** wrong cells repaired by ECC at read-out *)
  spared_bits : int;  (** rows remapped to spare cells *)
  failed_bits : (string * int) list;
  write_attempts : int;
  cost : cost;
      (** as actually spent: escalated writes weighted by the channel's
          escalation gain, verify cycles counted per read-back *)
}

val program :
  ?resilience:resilience ->
  ?backend:Sttc_backend.Backend.t ->
  channel:Sttc_fault.Mtj.channel ->
  Sttc_netlist.Netlist.t ->
  entry list ->
  program_report
(** Program a foundry view through a stochastic write channel
    (default resilience: {!no_resilience}; default backend: [stt], which
    prices the cost report with the MTJ write constants — TVD parts go
    through the same program-verify-retry channel model with their own
    per-cell trim energy/time).  Never raises on device faults or
    bitstream/netlist mismatches — every anomaly is classified in
    [outcome]. *)

val pp_program_report : Format.formatter -> program_report -> unit
