(** Paper-style rendering of experiment results: Table I, Table II and the
    Fig. 3 series. *)

type benchmark_row = {
  circuit : string;
  size : int;  (** gate count excluding flip-flops *)
  results : (string * Flow.result) list;
      (** keyed by algorithm name, in table order *)
  failures : (string * string) list;
      (** algorithms that produced no result (crash, timeout), with the
          reason — their table cells render as ["-"] and each failure is
          listed in a footnote under the table *)
}

val complete_row :
  string -> int -> (string * Flow.result) list -> benchmark_row
(** A row with no failures. *)

val table1 : benchmark_row list -> string
(** Performance degradation %, power overhead %, area overhead %, and
    number of STTs per circuit and algorithm, with the paper's Average
    row. *)

val table2 : benchmark_row list -> string
(** Selection CPU time (MM:SS.d) per circuit and algorithm. *)

val fig3 : benchmark_row list -> string
(** Required test clocks (Eq. 1 for independent, Eq. 2 for dependent,
    max of Eqs. 2 and 3 for parametric) per circuit, with years-to-break
    at 1e9 patterns/s. *)

val fig1 : unit -> string
(** The STT-LUT vs CMOS comparison: published reference values next to
    this repo's analytical model predictions. *)
