module Netlist = Sttc_netlist.Netlist
module Truth = Sttc_logic.Truth

type entry = {
  lut_name : string;
  config : Truth.t;
}

let of_hybrid hybrid =
  let nl = Hybrid.foundry_view hybrid in
  List.map
    (fun (id, config) -> { lut_name = Netlist.name nl id; config })
    (Hybrid.bitstream hybrid)

let to_string entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# sttc bitstream v1: <lut-name> <rows, row 0 first>\n";
  List.iter
    (fun e ->
      Buffer.add_string buf e.lut_name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Truth.to_string e.config);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let parse text =
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ name; rows ] -> (
            match Truth.of_string rows with
            | config -> entries := { lut_name = name; config } :: !entries
            | exception Invalid_argument m ->
                failwith (Printf.sprintf "bitstream:%d: %s" (i + 1) m))
        | _ -> failwith (Printf.sprintf "bitstream:%d: expected 'name rows'" (i + 1)))
    (String.split_on_char '\n' text);
  List.rev !entries

let apply nl entries =
  let configs =
    List.map
      (fun e ->
        match Netlist.find nl e.lut_name with
        | None -> invalid_arg ("Provision.apply: no node named " ^ e.lut_name)
        | Some id -> (id, e.config))
      entries
  in
  let programmed = Sttc_netlist.Transform.program_luts nl configs in
  Netlist.iter
    (fun _id node ->
      match node.Netlist.kind with
      | Netlist.Lut { config = None; _ } ->
          invalid_arg
            ("Provision.apply: LUT " ^ node.Netlist.name
           ^ " left unconfigured")
      | _ -> ())
    programmed;
  programmed

type cost = {
  mtj_cells : int;
  write_energy_nj : float;
  write_time_us : float;
  verify_cycles : int;
}

let programming_cost hybrid =
  let cells = Hybrid.bitstream_bits hybrid in
  {
    mtj_cells = cells;
    write_energy_nj =
      float_of_int cells *. Sttc_tech.Stt_lib.write_energy_fj /. 1e6;
    write_time_us =
      float_of_int cells *. Sttc_tech.Stt_lib.write_time_ns /. 1e3;
    verify_cycles = cells;
  }

let pp_cost fmt c =
  Format.fprintf fmt
    "programming: %d MTJ cells, %.3f nJ write energy, %.2f us serial write \
     time, %d verify cycles"
    c.mtj_cells c.write_energy_nj c.write_time_us c.verify_cycles
