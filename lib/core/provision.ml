module Netlist = Sttc_netlist.Netlist
module Truth = Sttc_logic.Truth
module Mtj = Sttc_fault.Mtj
module Ecc = Sttc_fault.Ecc
module Backend = Sttc_backend.Backend

type entry = {
  lut_name : string;
  config : Truth.t;
}

let of_hybrid hybrid =
  let nl = Hybrid.foundry_view hybrid in
  List.map
    (fun (id, config) -> { lut_name = Netlist.name nl id; config })
    (Hybrid.bitstream hybrid)

let to_string entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# sttc bitstream v1: <lut-name> <rows, row 0 first>\n";
  List.iter
    (fun e ->
      Buffer.add_string buf e.lut_name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Truth.to_string e.config);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let parse text =
  let entries = ref [] in
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun i line ->
      let fail msg = failwith (Printf.sprintf "bitstream:%d: %s" (i + 1) msg) in
      (* String.trim also strips the '\r' of CRLF line endings *)
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (( <> ) "")
        with
        | [ name; rows ] -> (
            (match Hashtbl.find_opt seen name with
            | Some first ->
                fail
                  (Printf.sprintf "duplicate entry for %s (first at line %d)"
                     name first)
            | None -> Hashtbl.add seen name (i + 1));
            match Truth.of_string rows with
            | config -> entries := { lut_name = name; config } :: !entries
            | exception Invalid_argument m -> fail m)
        | _ -> fail "expected 'name rows'")
    (String.split_on_char '\n' text);
  List.rev !entries

let parse_result text =
  match parse text with
  | entries -> Ok entries
  | exception Failure m -> Error m

let apply nl entries =
  let configs =
    List.map
      (fun e ->
        match Netlist.find nl e.lut_name with
        | None -> invalid_arg ("Provision.apply: no node named " ^ e.lut_name)
        | Some id -> (id, e.config))
      entries
  in
  let programmed = Sttc_netlist.Transform.program_luts nl configs in
  Netlist.iter
    (fun _id node ->
      match node.Netlist.kind with
      | Netlist.Lut { config = None; _ } ->
          invalid_arg
            ("Provision.apply: LUT " ^ node.Netlist.name
           ^ " left unconfigured")
      | _ -> ())
    programmed;
  programmed

type cost = {
  mtj_cells : int;
  cell_noun : string;
  write_energy_nj : float;
  write_time_us : float;
  verify_cycles : int;
}

let programming_cost ?(backend = Backend.stt) hybrid =
  let cells = Hybrid.bitstream_bits hybrid in
  {
    mtj_cells = cells;
    cell_noun = backend.Backend.cell_noun;
    write_energy_nj =
      float_of_int cells *. backend.Backend.write_energy_fj /. 1e6;
    write_time_us = float_of_int cells *. backend.Backend.write_time_ns /. 1e3;
    verify_cycles = cells;
  }

let pp_cost fmt c =
  Format.fprintf fmt
    "programming: %d %s cells, %.3f nJ write energy, %.2f us serial write \
     time, %d verify cycles"
    c.mtj_cells c.cell_noun c.write_energy_nj c.write_time_us c.verify_cycles

(* ---------- resilient programming ---------- *)

type resilience = {
  retry_budget : int;
  escalate : bool;
  ecc : bool;
  spare_rows : int;
}

let no_resilience =
  { retry_budget = 0; escalate = false; ecc = false; spare_rows = 0 }

let default_resilience =
  { retry_budget = 3; escalate = true; ecc = true; spare_rows = 2 }

type failure_cause =
  | Missing_lut of string
  | Not_a_lut of string
  | Arity_mismatch of { lut_name : string; expected : int; got : int }
  | Duplicate_entry of string
  | Unconfigured of string list
  | Unprogrammable of (string * int) list

let failure_to_string = function
  | Missing_lut n -> "no node named " ^ n
  | Not_a_lut n -> n ^ " is not a LUT slot"
  | Arity_mismatch { lut_name; expected; got } ->
      Printf.sprintf "%s: %d-input slot, %d-input config" lut_name expected got
  | Duplicate_entry n -> "duplicate bitstream entry for " ^ n
  | Unconfigured names ->
      Printf.sprintf "%d LUT slot(s) never configured (%s%s)"
        (List.length names)
        (String.concat ", "
           (List.filteri (fun i _ -> i < 4) names))
        (if List.length names > 4 then ", ..." else "")
  | Unprogrammable bits ->
      Printf.sprintf "%d unrepairable cell(s): %s%s" (List.length bits)
        (String.concat ", "
           (List.filteri
              (fun i _ -> i < 4)
              (List.map (fun (l, b) -> Printf.sprintf "%s[%d]" l b) bits)))
        (if List.length bits > 4 then ", ..." else "")

type outcome =
  | Programmed
  | Degraded of { corrected_bits : int; spared_bits : int }
  | Failed of failure_cause

type program_report = {
  outcome : outcome;
  view : Netlist.t option;
  retried_bits : int;
  corrected_bits : int;
  spared_bits : int;
  failed_bits : (string * int) list;
  write_attempts : int;
  cost : cost;
}

(* One cell through the program-verify-retry loop.  Returns the stored
   value and whether any rewrite was needed. *)
let write_cell resilience channel ~lut ~cell target =
  let rec go attempt =
    let escalation = if resilience.escalate then attempt else 0 in
    let stored = Mtj.write channel ~lut ~cell ~escalation target in
    if stored = target then (stored, attempt > 0)
    else if attempt < resilience.retry_budget then go (attempt + 1)
    else (stored, attempt > 0)
  in
  go 0

let structural_check nl entries =
  let rec dup seen = function
    | [] -> None
    | e :: rest ->
        if List.mem e.lut_name seen then Some (Duplicate_entry e.lut_name)
        else dup (e.lut_name :: seen) rest
  in
  let entry_error e =
    match Netlist.find nl e.lut_name with
    | None -> Some (Missing_lut e.lut_name)
    | Some id -> (
        match Netlist.kind nl id with
        | Netlist.Lut { arity; _ } ->
            if Truth.arity e.config <> arity then
              Some
                (Arity_mismatch
                   {
                     lut_name = e.lut_name;
                     expected = arity;
                     got = Truth.arity e.config;
                   })
            else None
        | _ -> Some (Not_a_lut e.lut_name))
  in
  match dup [] entries with
  | Some c -> Some c
  | None -> (
      match List.find_map entry_error entries with
      | Some c -> Some c
      | None ->
          let named = List.map (fun e -> e.lut_name) entries in
          let unconfigured =
            Netlist.fold
              (fun _ node acc ->
                match node.Netlist.kind with
                | Netlist.Lut { config = None; _ }
                  when not (List.mem node.Netlist.name named) ->
                    node.Netlist.name :: acc
                | _ -> acc)
              nl []
          in
          if unconfigured = [] then None
          else Some (Unconfigured (List.rev unconfigured)))

let program ?(resilience = no_resilience) ?(backend = Backend.stt) ~channel nl
    entries =
  Sttc_obs.Span.with_ "provision.program" ~cat:"core"
    ~attrs:[ ("luts", string_of_int (List.length entries)) ]
  @@ fun () ->
  let record r =
    Sttc_obs.Metrics.(
      incr "provision.programs";
      incr ~by:r.retried_bits "provision.retried_bits";
      incr ~by:r.corrected_bits "provision.corrected_bits";
      incr ~by:r.spared_bits "provision.spared_bits";
      incr ~by:r.write_attempts "provision.write_attempts");
    r
  in
  let attempts0 = Mtj.attempts channel in
  let energy0 = Mtj.energy_units channel in
  let verify0 = Mtj.verify_reads channel in
  let cost cells =
    {
      mtj_cells = cells;
      cell_noun = backend.Backend.cell_noun;
      write_energy_nj =
        (Mtj.energy_units channel -. energy0)
        *. backend.Backend.write_energy_fj /. 1e6;
      write_time_us =
        float_of_int (Mtj.attempts channel - attempts0)
        *. backend.Backend.write_time_ns /. 1e3;
      verify_cycles = Mtj.verify_reads channel - verify0;
    }
  in
  match structural_check nl entries with
  | Some cause ->
      record
        {
          outcome = Failed cause;
          view = None;
          retried_bits = 0;
          corrected_bits = 0;
          spared_bits = 0;
          failed_bits = [];
          write_attempts = 0;
          cost = cost 0;
        }
  | None ->
      let retried = ref 0
      and corrected = ref 0
      and spared = ref 0
      and failed = ref []
      and cells = ref 0 in
      let configs =
        List.map
          (fun e ->
            let lut = e.lut_name in
            let id = Netlist.find_exn nl lut in
            let rows = Truth.rows e.config in
            let desired = Array.init rows (Truth.row e.config) in
            let stored = Array.make rows false in
            let next_spare = ref 0 in
            (* data cells, with spare-row remapping for cells the whole
               retry budget cannot fix *)
            Array.iteri
              (fun row target ->
                incr cells;
                let v, re = write_cell resilience channel ~lut ~cell:row target in
                if re then incr retried;
                let v = ref v in
                while
                  !v <> target && !next_spare < resilience.spare_rows
                do
                  let cell = rows + !next_spare in
                  incr next_spare;
                  incr cells;
                  let sv, re = write_cell resilience channel ~lut ~cell target in
                  if re then incr retried;
                  if sv = target then begin
                    incr spared;
                    v := sv
                  end
                done;
                stored.(row) <- !v)
              desired;
            (* parity cells: computed over the intended bits, stored
               through the same unreliable channel *)
            let effective =
              if not resilience.ecc then stored
              else begin
                let parity = Ecc.encode desired in
                let parity_base = rows + resilience.spare_rows in
                let stored_parity =
                  Array.mapi
                    (fun j p ->
                      incr cells;
                      let v, re =
                        write_cell resilience channel ~lut
                          ~cell:(parity_base + j) p
                      in
                      if re then incr retried;
                      v)
                    parity
                in
                match Ecc.decode ~data:stored ~parity:stored_parity with
                | Ecc.Clean -> stored
                | Ecc.Corrected repaired ->
                    Array.iteri
                      (fun row v -> if v <> stored.(row) then incr corrected)
                      repaired;
                    repaired
                | Ecc.Uncorrectable -> stored
              end
            in
            Array.iteri
              (fun row v ->
                if v <> desired.(row) then failed := (lut, row) :: !failed)
              effective;
            let bits =
              Array.to_seq effective
              |> Seq.map (fun b -> if b then "1" else "0")
              |> List.of_seq |> String.concat ""
            in
            (id, Truth.of_string bits))
          entries
      in
      let view = Sttc_netlist.Transform.program_luts nl configs in
      let failed_bits = List.rev !failed in
      let outcome =
        if failed_bits <> [] then Failed (Unprogrammable failed_bits)
        else if !corrected > 0 || !spared > 0 then
          Degraded { corrected_bits = !corrected; spared_bits = !spared }
        else Programmed
      in
      record
        {
          outcome;
          view = Some view;
          retried_bits = !retried;
          corrected_bits = !corrected;
          spared_bits = !spared;
          failed_bits;
          write_attempts = Mtj.attempts channel - attempts0;
          cost = cost !cells;
        }

let pp_program_report fmt r =
  let outcome =
    match r.outcome with
    | Programmed -> "PROGRAMMED (exact image)"
    | Degraded { corrected_bits; spared_bits } ->
        Printf.sprintf "DEGRADED (functionally exact: %d ECC-corrected, %d spared)"
          corrected_bits spared_bits
    | Failed cause -> "FAILED: " ^ failure_to_string cause
  in
  Format.fprintf fmt
    "%s@\n  %d write attempts over %d cells (%d retried), %a"
    outcome r.write_attempts r.cost.mtj_cells r.retried_bits pp_cost r.cost
