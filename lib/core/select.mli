(** Shared machinery of the three selection algorithms (Section IV-A).

    All three start from the same sampled pool of longest non-critical I/O
    paths; they differ in which gates they take from it.  Candidate sets
    are timed through an incremental trial engine by default
    ({!Sttc_analysis.Sta.trial} over a {!Sttc_netlist.Transform.Overlay}),
    with results bit-identical to the legacy full re-analysis; setting
    the environment variable [STTC_FULL_STA=1] forces the legacy path. *)

type context = {
  netlist : Sttc_netlist.Netlist.t;
  library : Sttc_tech.Library.t;
  sta : Sttc_analysis.Sta.t;  (** timing of the unmodified netlist *)
  paths : Sttc_analysis.Paths.io_path list;  (** deepest first *)
  incremental : bool;  (** trial engine in use (vs legacy full STA) *)
  overlay : Sttc_netlist.Transform.Overlay.t;
      (** scratch replacement view over [netlist] *)
  trial : Sttc_analysis.Sta.trial option;  (** [Some] iff [incremental] *)
  feeds_endpoint : bool array;
      (** per node: inside some endpoint's combinational fanin cone *)
  target_mark : bool array;
      (** scratch for diffing candidate sets against the session state *)
}

val incremental_enabled : unit -> bool
(** False when [STTC_FULL_STA] is set to [1]/[true]/[yes] — the escape
    hatch used by CI to diff incremental against from-scratch flows. *)

val prepare :
  rng:Sttc_util.Rng.t ->
  ?fraction:float ->
  ?min_ffs:int ->
  ?sta:Sttc_analysis.Sta.t ->
  ?incremental:bool ->
  Sttc_tech.Library.t ->
  Sttc_netlist.Netlist.t ->
  context
(** Runs baseline STA, samples I/O paths (paper defaults: 2 % of
    components, at least two flip-flops), excludes paths containing the
    critical path, sorts deepest first.  [?sta] supplies a memoized base
    analysis (used when it was computed on this exact netlist value —
    physical equality — otherwise it is recomputed); [?incremental]
    defaults to {!incremental_enabled}. *)

val replaceable : context -> Sttc_analysis.Paths.io_path -> Sttc_netlist.Netlist.node_id list
(** CMOS gates of a path (LUTs and sequential nodes excluded). *)

val pool : context -> Sttc_netlist.Netlist.node_id list
(** Union of replaceable gates across all sampled paths, deduplicated,
    in path order. *)

val timing_ok :
  context -> clock_ps:float -> Sttc_netlist.Netlist.node_id list -> bool
(** Would replacing the given gates keep the critical delay within
    [clock_ps]?  In incremental mode the context holds a persistent
    trial session: successive queries are diffed against the previously
    evaluated set and only the delta cone is re-propagated, and delta
    gates disjoint from every endpoint cone are never propagated at all
    (counter [select.timing_early_out] when that covers the whole
    delta).  In legacy mode every query is a full STA on a copied trial
    replacement.  Both modes return bit-identical booleans. *)

val trial_critical :
  context ->
  Sttc_netlist.Netlist.node_id list ->
  float * Sttc_netlist.Netlist.node_id list
(** Critical delay and one worst path of the netlist with the given gates
    replaced — what [Sta.critical_path (Sta.analyze lib (replace_many
    netlist gates))] would return, without the copy in incremental mode.
    Used by the parametric repair loop. *)
