(** Shared machinery of the three selection algorithms (Section IV-A).

    All three start from the same sampled pool of longest non-critical I/O
    paths; they differ in which gates they take from it. *)

type context = {
  netlist : Sttc_netlist.Netlist.t;
  library : Sttc_tech.Library.t;
  sta : Sttc_analysis.Sta.t;  (** timing of the unmodified netlist *)
  paths : Sttc_analysis.Paths.io_path list;  (** deepest first *)
}

val prepare :
  rng:Sttc_util.Rng.t ->
  ?fraction:float ->
  ?min_ffs:int ->
  Sttc_tech.Library.t ->
  Sttc_netlist.Netlist.t ->
  context
(** Runs baseline STA, samples I/O paths (paper defaults: 2 % of
    components, at least two flip-flops), excludes paths containing the
    critical path, sorts deepest first. *)

val replaceable : context -> Sttc_analysis.Paths.io_path -> Sttc_netlist.Netlist.node_id list
(** CMOS gates of a path (LUTs and sequential nodes excluded). *)

val pool : context -> Sttc_netlist.Netlist.node_id list
(** Union of replaceable gates across all sampled paths, deduplicated,
    in path order. *)

val timing_ok :
  context -> clock_ps:float -> Sttc_netlist.Netlist.node_id list -> bool
(** Would replacing the given gates keep the critical delay within
    [clock_ps]?  Evaluated by STA on a trial replacement. *)
