module Netlist = Sttc_netlist.Netlist
module Query = Sttc_netlist.Query
module Transform = Sttc_netlist.Transform
module Rng = Sttc_util.Rng

let pick_extra_inputs ~rng ~per_lut nl gates =
  if per_lut < 0 then invalid_arg "Expand.pick_extra_inputs: per_lut";
  let all = Array.init (Netlist.node_count nl) Fun.id in
  (* A cycle can close through a chain of several added edges, so the
     per-gate reachability test is not enough.  Sufficient condition: no
     candidate is combinationally downstream of ANY selected gate — then
     every added edge points "backwards or sideways" and no cycle can
     involve the new edges. *)
  let downstream = Hashtbl.create 256 in
  List.iter
    (fun gate ->
      List.iter
        (fun id -> Hashtbl.replace downstream id ())
        (Query.fanout_cone nl gate))
    gates;
  let usable_kind id =
    match Netlist.kind nl id with
    | Netlist.Pi | Netlist.Dff | Netlist.Gate _ ->
        (not (Netlist.is_combinational (Netlist.kind nl id)))
        || not (Hashtbl.mem downstream id)
    | Netlist.Const _ | Netlist.Lut _ -> false
  in
  List.filter_map
    (fun gate ->
      match Netlist.kind nl gate with
      | Netlist.Gate fn ->
          let arity = Sttc_logic.Gate_fn.arity fn in
          let room = Sttc_logic.Truth.max_arity - arity in
          let want = min per_lut room in
          if want <= 0 then None
          else begin
            let existing = Array.to_list (Netlist.fanins nl gate) in
            let chosen = ref [] in
            let attempts = ref 0 in
            while List.length !chosen < want && !attempts < 40 do
              incr attempts;
              let cand = Rng.pick rng all in
              if
                cand <> gate
                && usable_kind cand
                && (not (List.mem cand existing))
                && not (List.mem cand !chosen)
              then chosen := cand :: !chosen
            done;
            if !chosen = [] then None else Some (gate, List.rev !chosen)
          end
      | _ -> None)
    gates

let pick_absorptions nl gates =
  let module Int_set = Set.Make (Int) in
  let selected = Int_set.of_list gates in
  List.filter_map
    (fun gate ->
      match Transform.absorbable_driver nl gate with
      | Some driver when not (Int_set.mem driver selected) ->
          Some (gate, driver)
      | Some _ | None -> None)
    gates
