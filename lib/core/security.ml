module Netlist = Sttc_netlist.Netlist
module Query = Sttc_netlist.Query
module Gate_fn = Sttc_logic.Gate_fn
module Lognum = Sttc_util.Lognum

type constants = {
  alpha : int -> float;
  p : int -> float;
}

let paper_constants = { alpha = Gate_fn.paper_alpha; p = Gate_fn.paper_p }

let computed_constants =
  {
    alpha = (fun n -> if n = 1 then 1.5 else Gate_fn.computed_alpha n);
    p = (fun n -> float_of_int (Gate_fn.candidate_count n));
  }

type report = {
  missing_gates : int;
  accessible_inputs : int;
  total_config_bits : int;
  n_indep : Lognum.t;
  n_dep : Lognum.t;
  n_bf : Lognum.t;
  dependent_pairs : int;
}

let evaluate ?(constants = paper_constants) nl ~luts =
  if luts = [] then invalid_arg "Security.evaluate: no missing gates";
  List.iter
    (fun id ->
      match Netlist.kind nl id with
      | Netlist.Lut _ -> ()
      | _ -> invalid_arg "Security.evaluate: node is not a LUT")
    luts;
  let seq_depth = Query.sequential_depth_to_po nl in
  let depth_of id =
    (* at least one clock to observe anything *)
    let d = seq_depth.(id) in
    if d = max_int then 1 else d + 1
  in
  let arity_of id =
    match Netlist.kind nl id with
    | Netlist.Lut { arity; _ } -> arity
    | _ -> assert false
  in
  let m = List.length luts in
  (* I: the attacker-accessible inputs driving the missing gates — the
     primary inputs and (scan-accessible) flip-flop outputs in the
     transitive fan-in cones of the LUTs.  Internal nets are not directly
     controllable, so they do not count. *)
  let accessible =
    Query.cone_inputs nl luts
    |> List.filter (fun id ->
           match Netlist.kind nl id with
           | Netlist.Pi | Netlist.Dff -> true
           | Netlist.Const _ | Netlist.Gate _ | Netlist.Lut _ -> false)
  in
  let i = List.length accessible in
  let total_config_bits =
    List.fold_left (fun acc id -> acc + (1 lsl arity_of id)) 0 luts
  in
  (* Eq. (1): sum over missing gates of alpha_i * D_i *)
  let n_indep =
    Lognum.sum
      (List.map
         (fun id ->
           Lognum.of_float
             (constants.alpha (arity_of id) *. float_of_int (depth_of id)))
         luts)
  in
  (* Eq. (2): product over missing gates of alpha_i * P_i * D_i *)
  let n_dep =
    Lognum.prod
      (List.map
         (fun id ->
           let a = arity_of id in
           Lognum.of_float
             (constants.alpha a *. constants.p a *. float_of_int (depth_of id)))
         luts)
  in
  (* Eq. (3): 2^I * P^M * D, with P and D as averages over the LUTs *)
  let avg f =
    List.fold_left (fun acc id -> acc +. f id) 0. luts /. float_of_int m
  in
  let p_avg = avg (fun id -> constants.p (arity_of id)) in
  let d_avg = avg (fun id -> float_of_int (depth_of id)) in
  let n_bf =
    Lognum.(
      pow (of_int 2) i
      * pow_float (of_float p_avg) (float_of_int m)
      * of_float (Float.max 1. d_avg))
  in
  let dependent_pairs = List.length (Query.connected_lut_pairs nl luts) in
  {
    missing_gates = m;
    accessible_inputs = i;
    total_config_bits;
    n_indep;
    n_dep;
    n_bf;
    dependent_pairs;
  }

let years_to_break ?(rate_hz = 1e9) clocks =
  Lognum.clocks_to_years ~rate_hz clocks

let pp_report fmt r =
  Format.fprintf fmt
    "security: M=%d, I=%d, %d config bits, %d dependent pairs@\n\
     N_indep=%a  N_dep=%a  N_bf=%a (test clocks)"
    r.missing_gates r.accessible_inputs r.total_config_bits r.dependent_pairs
    Lognum.pp r.n_indep Lognum.pp r.n_dep Lognum.pp r.n_bf
