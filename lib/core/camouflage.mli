(** IC camouflaging baseline — the comparison point of Section IV-A.3.

    A camouflaged cell looks identical under delayering for a small, known
    set of functions (classically NAND2 / NOR2 / XNOR2 [12]); the attacker
    knows the candidate set and only has to pick 1-of-3 per cell, versus
    the 6-16 meaningful functions (more with dummy inputs and complex
    functions) a reconfigurable STT LUT can realize.  The paper argues
    this is camouflaging's fundamental weakness; this module makes the
    comparison runnable. *)

val candidate_functions : Sttc_logic.Gate_fn.t list
(** NAND2, NOR2, XNOR2. *)

val candidates_per_cell : int
(** 3, vs [Gate_fn.candidate_count 2 = 6] per 2-input STT LUT. *)

type t

val eligible : Sttc_netlist.Netlist.t -> Sttc_netlist.Netlist.node_id list
(** Gates a camouflaged standard cell can stand in for (2-input gates
    whose function is in the candidate set). *)

val make :
  Sttc_netlist.Netlist.t -> Sttc_netlist.Netlist.node_id list -> t
(** Camouflage the listed gates.  Raises [Invalid_argument] when a gate is
    not {!eligible}. *)

val random :
  rng:Sttc_util.Rng.t -> count:int -> Sttc_netlist.Netlist.t -> t
(** Camouflage [count] random eligible gates (fewer when the circuit does
    not have enough — matching the independent-selection setup). *)

val cell_count : t -> int
val hybrid : t -> Hybrid.t
(** The camouflaged design expressed as LUT slots (what both the
    PPA evaluation and the SAT attack consume). *)

val search_space : t -> Sttc_util.Lognum.t
(** [3^M] — against the STT hybrid's [2^(config bits)]. *)

val sat_candidates :
  t -> (Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t list) list
(** The per-cell candidate lists in the form [Sat_attack.run ~candidates]
    consumes — what a camouflaging attacker knows that an STT attacker
    does not. *)
