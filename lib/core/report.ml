module Table = Sttc_util.Table
module Lognum = Sttc_util.Lognum

type benchmark_row = {
  circuit : string;
  size : int;
  results : (string * Flow.result) list;
  failures : (string * string) list;
}

let complete_row circuit size results =
  { circuit; size; results; failures = [] }

(* Partial rows print their cells as "-"; the footnote says why. *)
let failure_notes rows =
  let notes =
    List.concat_map
      (fun row ->
        List.map
          (fun (alg, reason) ->
            Printf.sprintf "  ! %s/%s: %s" row.circuit alg reason)
          row.failures)
      rows
  in
  if notes = [] then ""
  else "partial results:\n" ^ String.concat "\n" notes ^ "\n"

let algorithms = [ "independent"; "dependent"; "parametric" ]
let short = function
  | "independent" -> "Indep"
  | "dependent" -> "Dep"
  | "parametric" -> "Para"
  | s -> s

let get row name = List.assoc_opt name row.results

let table1 rows =
  let headers =
    [ ("Circuit", Table.Left) ]
    @ List.map (fun a -> ("Perf% " ^ short a, Table.Right)) algorithms
    @ List.map (fun a -> ("Power% " ^ short a, Table.Right)) algorithms
    @ List.map (fun a -> ("Area% " ^ short a, Table.Right)) algorithms
    @ List.map (fun a -> ("#STT " ^ short a, Table.Right)) algorithms
    @ [ ("size", Table.Right) ]
  in
  let t = Table.create ~headers in
  let cell f row a =
    match get row a with Some r -> f r | None -> "-"
  in
  let fmt_pct x = Printf.sprintf "%.2f" x in
  List.iter
    (fun row ->
      Table.add_row t
        ([ row.circuit ]
        @ List.map
            (cell (fun r -> fmt_pct r.Flow.overhead.Ppa.performance_pct) row)
            algorithms
        @ List.map
            (cell (fun r -> fmt_pct r.Flow.overhead.Ppa.power_pct) row)
            algorithms
        @ List.map
            (cell (fun r -> fmt_pct r.Flow.overhead.Ppa.area_pct) row)
            algorithms
        @ List.map
            (cell (fun r -> string_of_int r.Flow.overhead.Ppa.n_stts) row)
            algorithms
        @ [ string_of_int row.size ]))
    rows;
  (* Average row, as in the paper *)
  Table.add_separator t;
  let avg f =
    let vals =
      List.concat_map
        (fun row -> match f row with Some v -> [ v ] | None -> [])
        rows
    in
    Sttc_util.Stats.mean vals
  in
  let avg_of proj a =
    Printf.sprintf "%.2f"
      (avg (fun row -> Option.map proj (get row a)))
  in
  Table.add_row t
    ([ "Average" ]
    @ List.map (avg_of (fun r -> r.Flow.overhead.Ppa.performance_pct)) algorithms
    @ List.map (avg_of (fun r -> r.Flow.overhead.Ppa.power_pct)) algorithms
    @ List.map (avg_of (fun r -> r.Flow.overhead.Ppa.area_pct)) algorithms
    @ List.map
        (avg_of (fun r -> float_of_int r.Flow.overhead.Ppa.n_stts))
        algorithms
    @ [
        Printf.sprintf "%.0f" (avg (fun row -> Some (float_of_int row.size)));
      ]);
  Table.render t ^ failure_notes rows

let table2 rows =
  let headers =
    [ ("Circuit", Table.Left) ]
    @ List.map (fun a -> (String.capitalize_ascii a, Table.Right)) algorithms
  in
  let t = Table.create ~headers in
  List.iter
    (fun row ->
      Table.add_row t
        (row.circuit
        :: List.map
             (fun a ->
               match get row a with
               | Some r -> Sttc_util.Timing.format_min_sec r.Flow.selection_seconds
               | None -> "-")
             algorithms))
    rows;
  Table.render t ^ failure_notes rows

let clocks_for name (r : Flow.result) =
  match name with
  | "independent" -> r.Flow.security.Security.n_indep
  | "dependent" -> r.Flow.security.Security.n_dep
  | _ -> Lognum.max r.Flow.security.Security.n_dep r.Flow.security.Security.n_bf

let fig3 rows =
  let headers =
    [ ("Circuit", Table.Left) ]
    @ List.map (fun a -> ("Clocks " ^ short a, Table.Right)) algorithms
    @ [ ("Years@1GHz Para", Table.Right) ]
  in
  let t = Table.create ~headers in
  List.iter
    (fun row ->
      let para_years =
        match get row "parametric" with
        | Some r ->
            Lognum.to_string
              (Security.years_to_break (clocks_for "parametric" r))
        | None -> "-"
      in
      Table.add_row t
        ((row.circuit
         :: List.map
              (fun a ->
                match get row a with
                | Some r -> Lognum.to_string (clocks_for a r)
                | None -> "-")
              algorithms)
        @ [ para_years ]))
    rows;
  Table.render t

let fig1 () =
  let headers =
    [
      ("Gate", Table.Left);
      ("Metric", Table.Left);
      ("Paper (ref)", Table.Right);
      ("Model", Table.Right);
      ("CMOS", Table.Right);
    ]
  in
  let t = Table.create ~headers in
  List.iter
    (fun (row : Sttc_tech.Stt_lib.fig1_row) ->
      let model = Sttc_tech.Stt_lib.fig1_model row.Sttc_tech.Stt_lib.gate in
      let gate_name = Sttc_logic.Gate_fn.to_string row.Sttc_tech.Stt_lib.gate in
      let line metric reference predicted =
        Table.add_row t
          [
            gate_name;
            metric;
            Printf.sprintf "%.2f" reference;
            Printf.sprintf "%.2f" predicted;
            "1";
          ]
      in
      line "Delay" row.delay_ratio model.Sttc_tech.Stt_lib.delay_ratio;
      line "Active Power (a=10%)" row.active_power_ratio_10
        model.Sttc_tech.Stt_lib.active_power_ratio_10;
      line "Active Power (a=30%)" row.active_power_ratio_30
        model.Sttc_tech.Stt_lib.active_power_ratio_30;
      line "Standby Power" row.standby_power_ratio
        model.Sttc_tech.Stt_lib.standby_power_ratio;
      line "Energy per Switching" row.energy_per_switching_ratio
        model.Sttc_tech.Stt_lib.energy_per_switching_ratio;
      Table.add_separator t)
    Sttc_tech.Stt_lib.fig1_reference;
  (* 3-input gates: the paper's Fig. 1 skips them; the analytical model
     interpolates, shown as predictions with no reference column *)
  List.iter
    (fun fn ->
      let model = Sttc_tech.Stt_lib.fig1_model fn in
      let gate_name = Sttc_logic.Gate_fn.to_string fn in
      let line metric predicted =
        Table.add_row t
          [ gate_name; metric; "-"; Printf.sprintf "%.2f" predicted; "1" ]
      in
      line "Delay" model.Sttc_tech.Stt_lib.delay_ratio;
      line "Active Power (a=10%)" model.Sttc_tech.Stt_lib.active_power_ratio_10;
      line "Active Power (a=30%)" model.Sttc_tech.Stt_lib.active_power_ratio_30;
      line "Standby Power" model.Sttc_tech.Stt_lib.standby_power_ratio;
      line "Energy per Switching"
        model.Sttc_tech.Stt_lib.energy_per_switching_ratio;
      Table.add_separator t)
    [ Sttc_logic.Gate_fn.Nand 3; Sttc_logic.Gate_fn.Nor 3; Sttc_logic.Gate_fn.Xor 3 ];
  Table.render t
