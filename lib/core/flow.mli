(** The security-driven hybrid STT-CMOS design flow of Figure 2.

    Input: a synthesized gate-level netlist, the technology library, and a
    security requirement (which selection algorithm, with what
    parameters).  Output: the hybrid design plus the security and PPA
    reports, ready for physical design — with an optional sign-off
    equivalence check of the programmed view. *)

type algorithm =
  | Independent of { count : int }  (** paper: 5 *)
  | Dependent
  | Parametric of Algorithms.parametric_options

val algorithm_name : algorithm -> string
(** "independent" / "dependent" / "parametric". *)

val algorithm_to_json : algorithm -> Sttc_obs.Json.t
(** The canonical wire form shared by campaign manifests, CLI flags and
    serve requests: ["dependent"] as a bare string,
    [{"name": "independent", "count": n}] and
    [{"name": "parametric", "clock_factor": f}] as objects. *)

val algorithm_of_json : Sttc_obs.Json.t -> (algorithm, string) result
(** Inverse of {!algorithm_to_json}; also accepts a bare string for any
    of the three names ([count] defaults to 5, [clock_factor] to the
    default parametric budget). *)

type hardening = {
  extra_inputs_per_lut : int;
      (** connect up to this many unused (logically ignored) inputs per
          LUT to unrelated signals — Section IV-A.3's search-space
          expansion (default 0) *)
  absorb_drivers : bool;
      (** merge a single-fanout driver gate into each selected LUT so the
          slot realizes a complex multi-gate function (default false) *)
}

val no_hardening : hardening

val default_algorithms : algorithm list
(** The three configurations used across the paper's experiments. *)

type result = {
  algorithm : algorithm;
  hybrid : Hybrid.t;
  security : Security.report;
  overhead : Ppa.overhead;
  selection_seconds : float;
      (** wall-clock of selection + replacement only (Table II metric) *)
  lint : Sttc_lint.Diagnostic.t list;
      (** structural diagnostics of the programmed hybrid (warnings and
          infos; error-severity findings make {!protect} raise) *)
  parametric_meta : Algorithms.parametric_meta option;
      (** selection metadata when the algorithm was parametric-aware *)
}

(** {1 The unified entry point}

    One function covers both failure semantics; callers choose with a
    {!policy} value rather than between differently-named entry points:

    - [run ~policy:Strict] fails hard — parametric selection that cannot
      meet its clock budget, or a netlist whose hybrid trips the
      structural lint, raises [Invalid_argument] and takes the run with
      it;
    - [run ~policy:(Resilient r)] retries with fresh seeds and then
      walks an explicit graceful-degradation chain
      (parametric → dependent → independent), recording every rejected
      attempt so the caller can see what it actually got. *)

type resilience = {
  max_reseeds : int;
      (** extra seeds tried per degradation step before moving on *)
}

val default_resilience : resilience
(** [{ max_reseeds = 2 }] — seeds [seed, seed+1, seed+2] per step. *)

type policy =
  | Strict
  | Resilient of resilience

type rejection = {
  attempted : algorithm;
  attempt_seed : int;
  reason : string;  (** timing miss or the exception message *)
}

type resilient = {
  accepted : result;  (** the first attempt that passed *)
  requested : algorithm;
  rejections : rejection list;  (** failed attempts, in order *)
  degraded : bool;
      (** the accepted algorithm is weaker than the requested one *)
}
(** What {!run} produces.  Under [Strict] the outcome is always
    [{ accepted; requested; rejections = []; degraded = false }]. *)

val run :
  ?seed:int ->
  ?library:Sttc_tech.Library.t ->
  ?fraction:float ->
  ?hardening:hardening ->
  ?semantic:bool ->
  ?backend:Sttc_backend.Backend.t ->
  ?base_sta:Sttc_analysis.Sta.t ->
  policy:policy ->
  algorithm ->
  Sttc_netlist.Netlist.t ->
  resilient
(** Run the full selection-and-replacement stage and the evaluation
    around it.  Deterministic for a fixed seed at either policy.

    [backend] (default {!Sttc_backend.Backend.stt}) picks the protection
    technology.  Selection and hybrid construction are backend
    independent — the same (netlist, algorithm, seed) yields the same
    hybrid under every backend — while the PPA pricing, the Eq. 1-3
    constants and the provisioning cost are the backend's.  Hardening
    raises [Invalid_argument] under a candidate-restricted backend
    (e.g. [tvd]): its cells cannot realize the expanded functions.

    [base_sta] supplies a memoized timing analysis of the input netlist
    (e.g. the serve session cache); it is used only when it was computed
    on this exact netlist value, so it can never change results — only
    skip the base [Sta.analyze].

    [semantic] (default [false]) additionally gates every attempt on the
    {!Sttc_lint.Semantic_rules} pack run against the foundry view with
    the true bitstream: an error-severity finding — the Eq. 1 prover
    showing every missing gate independently testable, or a keyspace
    collapse — fails the attempt exactly like a structural error.  Under
    [Strict] that raises; under [Resilient] it lands in the rejection
    list and the flow reseeds or degrades.  The semantic diagnostics
    (warnings included) are appended to the result's [lint] field.

    [Strict]: a single attempt at [seed]; any failure raises
    [Invalid_argument].

    [Resilient { max_reseeds }]: try the requested algorithm at seeds
    [seed, seed+1, .., seed+max_reseeds], then degrade along
    {e parametric → dependent → independent} with the same reseed budget
    per step.  Raises [Invalid_argument] only when every attempt of
    every step failed (e.g. a netlist with no replaceable gates), with
    the full rejection list in the message. *)

val meets_timing : algorithm -> result -> (unit, string) Stdlib.result
(** Parametric results must keep measured performance degradation within
    the requested [clock_factor] budget; other algorithms always pass
    (the paper expects dependent selection to degrade timing). *)

val pp_resilient : Format.formatter -> resilient -> unit

val lint_view :
  ?library:Sttc_tech.Library.t -> result -> Sttc_lint.Security_rules.view
(** The security-lint view of a protect result: foundry netlist, LUT
    ids, algorithm tag, parametric metadata, original netlist and clock
    budget (the parametric [clock_factor], 1.08 otherwise). *)

val lint_security :
  ?library:Sttc_tech.Library.t ->
  ?only:string list ->
  result ->
  Sttc_lint.Diagnostic.t list
(** Run the {!Sttc_lint.Security_rules} pack on {!lint_view}. *)

val sign_off : ?method_:[ `Random of int | `Sat | `Bdd ] -> result -> bool
(** Programmed hybrid equivalent to the original? *)

val pp_result : Format.formatter -> result -> unit
