(** The security-driven hybrid STT-CMOS design flow of Figure 2.

    Input: a synthesized gate-level netlist, the technology library, and a
    security requirement (which selection algorithm, with what
    parameters).  Output: the hybrid design plus the security and PPA
    reports, ready for physical design — with an optional sign-off
    equivalence check of the programmed view. *)

type algorithm =
  | Independent of { count : int }  (** paper: 5 *)
  | Dependent
  | Parametric of Algorithms.parametric_options

val algorithm_name : algorithm -> string
(** "independent" / "dependent" / "parametric". *)

type hardening = {
  extra_inputs_per_lut : int;
      (** connect up to this many unused (logically ignored) inputs per
          LUT to unrelated signals — Section IV-A.3's search-space
          expansion (default 0) *)
  absorb_drivers : bool;
      (** merge a single-fanout driver gate into each selected LUT so the
          slot realizes a complex multi-gate function (default false) *)
}

val no_hardening : hardening

val default_algorithms : algorithm list
(** The three configurations used across the paper's experiments. *)

type result = {
  algorithm : algorithm;
  hybrid : Hybrid.t;
  security : Security.report;
  overhead : Ppa.overhead;
  selection_seconds : float;
      (** wall-clock of selection + replacement only (Table II metric) *)
  lint : Sttc_lint.Diagnostic.t list;
      (** structural diagnostics of the programmed hybrid (warnings and
          infos; error-severity findings make {!protect} raise) *)
  parametric_meta : Algorithms.parametric_meta option;
      (** selection metadata when the algorithm was parametric-aware *)
}

val protect :
  ?seed:int ->
  ?library:Sttc_tech.Library.t ->
  ?fraction:float ->
  ?hardening:hardening ->
  algorithm ->
  Sttc_netlist.Netlist.t ->
  result
(** Runs the full selection-and-replacement stage and the evaluation
    around it.  Deterministic for a fixed seed.  Raises [Invalid_argument]
    when the netlist has no replaceable gate. *)

val lint_view :
  ?library:Sttc_tech.Library.t -> result -> Sttc_lint.Security_rules.view
(** The security-lint view of a protect result: foundry netlist, LUT
    ids, algorithm tag, parametric metadata, original netlist and clock
    budget (the parametric [clock_factor], 1.08 otherwise). *)

val lint_security :
  ?library:Sttc_tech.Library.t ->
  ?only:string list ->
  result ->
  Sttc_lint.Diagnostic.t list
(** Run the {!Sttc_lint.Security_rules} pack on {!lint_view}. *)

val sign_off : ?method_:[ `Random of int | `Sat | `Bdd ] -> result -> bool
(** Programmed hybrid equivalent to the original? *)

val pp_result : Format.formatter -> result -> unit
