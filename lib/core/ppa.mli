(** Performance / power / area overhead of a hybrid versus its original —
    the three metric groups of Table I. *)

type overhead = {
  performance_pct : float;
      (** relative increase of the critical (longest endpoint) delay *)
  power_pct : float;  (** relative increase of total power *)
  area_pct : float;  (** relative increase of total cell area *)
  n_stts : int;  (** number of inserted STT LUTs *)
  base_delay_ps : float;
  hybrid_delay_ps : float;
  base_power_uw : float;
  hybrid_power_uw : float;
  base_area_um2 : float;
  hybrid_area_um2 : float;
}

type baseline
(** Cached base-side analyses (STA, activity, power, area) so repeated
    evaluations against the same original pay for them once. *)

val baseline :
  ?sta:Sttc_analysis.Sta.t ->
  Sttc_tech.Library.t ->
  Sttc_netlist.Netlist.t ->
  baseline
(** [?sta] reuses a precomputed timing analysis when it was computed on
    this exact netlist value (physical equality). *)

val evaluate :
  ?baseline:baseline ->
  Sttc_tech.Library.t ->
  base:Sttc_netlist.Netlist.t ->
  hybrid:Sttc_netlist.Netlist.t ->
  overhead
(** [hybrid] should be the programmed view so the power model sees real
    signal activities (the foundry view works too: unknown LUTs default to
    activity 0.5, and STT LUT power is activity-independent anyway).

    A supplied [?baseline] is used when it was built on [base] itself
    (physical equality; otherwise it is rebuilt).  The hybrid side is
    analyzed incrementally ({!Sttc_analysis.Sta.retime} /
    {!Sttc_analysis.Activity.refine}) when the hybrid is id-compatible
    with the base — bit-identical to the full analyses, which remain the
    fallback and the [STTC_FULL_STA=1] legacy path. *)

val pp : Format.formatter -> overhead -> unit
