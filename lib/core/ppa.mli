(** Performance / power / area overhead of a hybrid versus its original —
    the three metric groups of Table I. *)

type overhead = {
  performance_pct : float;
      (** relative increase of the critical (longest endpoint) delay *)
  power_pct : float;  (** relative increase of total power *)
  area_pct : float;  (** relative increase of total cell area *)
  n_stts : int;  (** number of inserted STT LUTs *)
  base_delay_ps : float;
  hybrid_delay_ps : float;
  base_power_uw : float;
  hybrid_power_uw : float;
  base_area_um2 : float;
  hybrid_area_um2 : float;
}

val evaluate :
  Sttc_tech.Library.t ->
  base:Sttc_netlist.Netlist.t ->
  hybrid:Sttc_netlist.Netlist.t ->
  overhead
(** [hybrid] should be the programmed view so the power model sees real
    signal activities (the foundry view works too: unknown LUTs default to
    activity 0.5, and STT LUT power is activity-independent anyway). *)

val pp : Format.formatter -> overhead -> unit
