module Netlist = Sttc_netlist.Netlist
module Transform = Sttc_netlist.Transform
module Truth = Sttc_logic.Truth

type t = {
  original : Netlist.t;
  programmed : Netlist.t;
  foundry : Netlist.t;
  luts : Netlist.node_id list; (* ascending *)
}

let make ?(extra_inputs = []) ?(absorb = []) nl gates =
  let module Int_set = Set.Make (Int) in
  let set = Int_set.of_list gates in
  if Int_set.is_empty set then invalid_arg "Hybrid.make: empty selection";
  List.iter
    (fun (id, _) ->
      if not (Int_set.mem id set) then
        invalid_arg "Hybrid.make: absorb target not in the selection")
    absorb;
  (* Absorptions first: the gate becomes a configured complex-function
     LUT.  Then plain/extra replacements for the rest. *)
  let absorbed = Int_set.of_list (List.map fst absorb) in
  let with_extras =
    List.filter
      (fun (id, _) -> Int_set.mem id set && not (Int_set.mem id absorbed))
      extra_inputs
  in
  let plain =
    Int_set.elements
      (List.fold_left
         (fun acc (id, _) -> Int_set.remove id acc)
         (Int_set.diff set absorbed) with_extras)
  in
  let programmed =
    let nl =
      List.fold_left
        (fun nl (id, driver) -> Transform.absorb_driver nl id ~driver)
        nl absorb
    in
    let nl =
      if plain = [] then nl
      else Transform.replace_many ~keep_function:true nl plain
    in
    List.fold_left
      (fun nl (id, extras) ->
        Transform.replace_gate_with_lut ~extra_inputs:extras
          ~keep_function:true nl id)
      nl with_extras
  in
  let foundry = Transform.strip_configs programmed in
  { original = nl; programmed; foundry; luts = Int_set.elements set }

let original t = t.original
let foundry_view t = t.foundry
let programmed t = t.programmed
let lut_ids t = t.luts
let lut_count t = List.length t.luts

let bitstream t =
  List.map
    (fun id ->
      match Netlist.kind t.programmed id with
      | Netlist.Lut { config = Some c; _ } -> (id, c)
      | _ -> assert false)
    t.luts

let bitstream_bits t =
  List.fold_left
    (fun acc (_, c) -> acc + Truth.rows c)
    0 (bitstream t)

let program_with t configs = Transform.program_luts t.foundry configs

let verify ?(method_ = `Sat) t =
  match method_ with
  | `Sat -> Sttc_sim.Equiv.check_sat t.original t.programmed
  | `Bdd -> Sttc_sim.Equiv.check_bdd t.original t.programmed
  | `Random vectors ->
      Sttc_sim.Equiv.check_random ~vectors ~seed:0x5ec t.original t.programmed
