(** Differential power analysis on simulated power traces.

    Section II claims a security side-benefit of the technology: an STT
    LUT's power consumption is (almost) independent of its input data, so
    hybrid designs leak less through the power side channel than their
    all-CMOS originals.  This module makes that claim measurable: it
    collects per-cycle energy traces from bit-parallel simulation (CMOS
    gates burn energy per output toggle, STT LUTs burn their pre-charge
    energy every cycle regardless of data), groups the traces by the value
    of a target signal, and reports the classic difference-of-means
    statistic an attacker would exploit.

    A protected signal is hidden when [dom_relative] of the hybrid is well
    below that of the original circuit for the same target. *)

type result = {
  traces : int;  (** number of independent traces collected *)
  cycles : int;  (** clock cycles per trace *)
  mean_energy_fj : float;  (** per-cycle average across all traces *)
  dom_fj : float;
      (** max over cycles of |mean(energy | target=1) - mean(energy |
          target=0)| *)
  dom_relative : float;  (** [dom_fj / mean_energy_fj] *)
}

val measure :
  ?cycles:int ->
  ?batches:int ->
  ?seed:int ->
  Sttc_tech.Library.t ->
  Sttc_netlist.Netlist.t ->
  target:string ->
  result
(** [measure lib nl ~target] simulates [batches] (default 16) batches of
    64 parallel traces for [cycles] (default 32) cycles of random stimulus
    from reset and correlates total dynamic energy with the named signal's
    value.  The netlist must be simulatable (no unprogrammed LUT).  Raises
    [Invalid_argument] on an unknown target name. *)

val leakage_reduction :
  ?cycles:int ->
  ?batches:int ->
  ?seed:int ->
  Sttc_tech.Library.t ->
  original:Sttc_netlist.Netlist.t ->
  hybrid:Sttc_netlist.Netlist.t ->
  target:string ->
  float
(** [dom_relative original / dom_relative hybrid] for the same target and
    stimulus: how many times harder the hybrid makes the attack ( > 1
    means the defence helps; [infinity] when the hybrid's leakage vanishes
    entirely). *)
