(** Statistical function-inference — a stand-in for the machine-learning
    attacks of Section IV-A.3.

    Coordinate-ascent over the per-LUT candidate functions: starting from
    a random assignment of meaningful gates, repeatedly re-fit one LUT at
    a time to maximise agreement with the oracle on a random probe set.
    Against independent selection each LUT's best response is close to
    its true function (the probes act as a training set); against
    dependent selection the loss surface couples the LUTs and the ascent
    stalls in local optima — the paper's argument for why enlarging the
    correlated search space defeats learning attacks. *)

type result = {
  recovered : bool;  (** final hypothesis functionally equivalent *)
  agreement : float;
      (** fraction of probe responses matched by the final hypothesis *)
  rounds_used : int;
  oracle_queries : int;
  seconds : float;
  bitstream : (Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t) list;
}

val run :
  ?rounds:int ->
  ?probes:int ->
  ?seed:int ->
  Sttc_core.Hybrid.t ->
  result
(** Defaults: 12 rounds, 1024 probe patterns.  Candidates per LUT are the
    meaningful gates of its arity plus the degenerate-free random tables
    observed to help on XOR-rich circuits. *)
