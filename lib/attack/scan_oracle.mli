(** The combinational oracle realized honestly through the pins.

    [Oracle.query] grants the attacker direct state access — the idealized
    model behind the combinational SAT attack.  This module shows what
    that access really is on silicon with an {e open} scan chain: every
    combinational query is a shift-in / capture / shift-out sequence,
    costing [2*FFs + 1] clock cycles of tester time instead of 1.

    The answers are bit-exact with [Oracle.query]; only the clock
    accounting differs.  This is the bridge between Fig. 3's "required
    test clocks" and the attack implementations: multiply an attack's
    query count by {!cycles_per_query} to get its tester time, and recall
    that shipped parts lock the chain ([Sttc_netlist.Scan.lock]), removing
    this interface entirely. *)

type t

val create : Sttc_core.Hybrid.t -> t
(** Scan-stitches the secret programmed view and wraps it in a
    pin-accurate tester session. *)

val query : t -> bool array -> bool array
(** Same contract as [Oracle.query]: PIs then flip-flop state in (original
    netlist order), POs then next-state out.  Internally performs the full
    shift-in / functional-capture / shift-out protocol. *)

val cycles_per_query : t -> int
(** [2 * flip-flops + 1]. *)

val clock_cycles : t -> int
(** Total tester clock cycles consumed so far. *)

val queries : t -> int
