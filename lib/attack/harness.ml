module Lognum = Sttc_util.Lognum

type verdict =
  | Recovered
  | Partial of float
  | Resisted

type entry = {
  attack : string;
  verdict : verdict;
  seconds : float;
  oracle_queries : int;
  detail : string;
  sat_stats : Sttc_obs.Metrics.snapshot option;
}

(* Solver telemetry now has one representation: the harness converts the
   solver's raw per-attack stats into the same snapshot shape the
   metrics registry exports, under the same series names.  Sorted by
   name, like every snapshot. *)
let snapshot_of_sat_stats (s : Sttc_logic.Sat.stats) : Sttc_obs.Metrics.snapshot
    =
  let open Sttc_obs.Metrics in
  [
    ("sat.conflicts", Counter s.Sttc_logic.Sat.conflicts);
    ("sat.decisions", Counter s.Sttc_logic.Sat.decisions);
    ("sat.kept_clauses", Gauge (float_of_int s.Sttc_logic.Sat.kept));
    ("sat.learned", Counter s.Sttc_logic.Sat.learned);
    ("sat.propagations", Counter s.Sttc_logic.Sat.propagations);
    ("sat.removed", Counter s.Sttc_logic.Sat.removed);
    ("sat.restarts", Counter s.Sttc_logic.Sat.restarts);
  ]

type campaign = {
  circuit : string;
  algorithm : string;
  lut_count : int;
  entries : entry list;
}

module Config = struct
  module Json = Sttc_obs.Json

  type t = {
    sat_timeout_s : float;
    seq_timeout_s : float option;
    tt_budget : int;
    guess_rounds : int;
    brute_max_bits : int;
    seq_frames : int;
    seed : int;
    jobs : int;
    solver_mode : Sat_attack.solver_mode;
  }

  let default =
    {
      sat_timeout_s = 30.;
      seq_timeout_s = None;
      tt_budget = 4000;
      guess_rounds = 8;
      brute_max_bits = 16;
      seq_frames = 4;
      seed = 0xcafe;
      jobs = 1;
      solver_mode = Sat_attack.Incremental;
    }

  let with_sat_timeout_s sat_timeout_s t = { t with sat_timeout_s }
  let with_seq_timeout_s seq_timeout_s t = { t with seq_timeout_s }
  let with_tt_budget tt_budget t = { t with tt_budget }
  let with_guess_rounds guess_rounds t = { t with guess_rounds }
  let with_brute_max_bits brute_max_bits t = { t with brute_max_bits }
  let with_seq_frames seq_frames t = { t with seq_frames }
  let with_seed seed t = { t with seed }
  let with_jobs jobs t = { t with jobs }
  let with_solver_mode solver_mode t = { t with solver_mode }

  let solver_mode_name = function
    | Sat_attack.Incremental -> "incremental"
    | Sat_attack.Scratch -> "scratch"

  let to_json t =
    Json.Obj
      ([ ("sat_timeout_s", Json.Float t.sat_timeout_s) ]
      @ (match t.seq_timeout_s with
        | Some s -> [ ("seq_timeout_s", Json.Float s) ]
        | None -> [])
      @ [
          ("tt_budget", Json.Int t.tt_budget);
          ("guess_rounds", Json.Int t.guess_rounds);
          ("brute_max_bits", Json.Int t.brute_max_bits);
          ("seq_frames", Json.Int t.seq_frames);
          ("seed", Json.Int t.seed);
          ("jobs", Json.Int t.jobs);
          ("solver_mode", Json.String (solver_mode_name t.solver_mode));
        ])

  let ( let* ) = Result.bind
  let mem name j = Option.value (Json.member name j) ~default:Json.Null

  let float_field j name default =
    match mem name j with
    | Json.Null -> Ok default
    | Json.Int n -> Ok (float_of_int n)
    | Json.Float f -> Ok f
    | _ -> Error (Printf.sprintf "harness config: %S must be a number" name)

  let int_field j name default =
    match mem name j with
    | Json.Null -> Ok default
    | Json.Int n -> Ok n
    | _ -> Error (Printf.sprintf "harness config: %S must be an integer" name)

  let of_json j =
    match j with
    | Json.Obj _ ->
        let* sat_timeout_s =
          float_field j "sat_timeout_s" default.sat_timeout_s
        in
        let* seq_timeout_s =
          match mem "seq_timeout_s" j with
          | Json.Null -> Ok None
          | Json.Int n -> Ok (Some (float_of_int n))
          | Json.Float f -> Ok (Some f)
          | _ -> Error "harness config: \"seq_timeout_s\" must be a number"
        in
        let* tt_budget = int_field j "tt_budget" default.tt_budget in
        let* guess_rounds = int_field j "guess_rounds" default.guess_rounds in
        let* brute_max_bits =
          int_field j "brute_max_bits" default.brute_max_bits
        in
        let* seq_frames = int_field j "seq_frames" default.seq_frames in
        let* seed = int_field j "seed" default.seed in
        let* jobs = int_field j "jobs" default.jobs in
        let* solver_mode =
          match mem "solver_mode" j with
          | Json.Null -> Ok default.solver_mode
          | Json.String "incremental" -> Ok Sat_attack.Incremental
          | Json.String "scratch" -> Ok Sat_attack.Scratch
          | Json.String s -> Error ("harness config: unknown solver_mode " ^ s)
          | _ -> Error "harness config: \"solver_mode\" must be a string"
        in
        Ok
          {
            sat_timeout_s;
            seq_timeout_s;
            tt_budget;
            guess_rounds;
            brute_max_bits;
            seq_frames;
            seed;
            jobs;
            solver_mode;
          }
    | _ -> Error "harness config: not a JSON object"
end

(* Every attack runs under the wall-clock budget.  The SAT variants
   check their own deadline between solver iterations; the rest are
   interrupted by {!Sttc_util.Timing.with_timeout}.  A zero (or
   negative) budget means "don't even start": the attacker got no CPU,
   so the design trivially resisted.

   [with_timeout] arms a per-process setitimer, which only the main
   domain may do — when the campaign runs inside a {!Sttc_util.Pool}
   task the budget is instead enforced cooperatively: an attack that
   returns past its budget is classified as exhausted, and attack code
   that polls [Pool.check_deadline] is interrupted at the poll. *)
let budgeted ~budget attack f =
  let skip detail =
    {
      attack;
      verdict = Resisted;
      seconds = 0.;
      oracle_queries = 0;
      detail;
      sat_stats = None;
    }
  in
  let exhausted () =
    {
      (skip (Printf.sprintf "wall-clock budget (%.1fs) exhausted" budget)) with
      seconds = budget;
    }
  in
  if budget <= 0. then skip "zero budget"
  else if Domain.is_main_domain () then
    match Sttc_util.Timing.with_timeout ~seconds:budget f with
    | Ok entry -> entry
    | Error `Timeout -> exhausted ()
  else
    let t0 = Sttc_util.Pool.now_s () in
    match f () with
    | entry ->
        if Sttc_util.Pool.now_s () -. t0 > budget then exhausted () else entry
    | exception Sttc_util.Pool.Deadline_exceeded -> exhausted ()

let attack ?solver ?(backend = Sttc_backend.Backend.stt) ?(config = Config.default)
    ~circuit ~algorithm hybrid =
  Sttc_obs.Metrics.incr
    ("backend.attack." ^ Sttc_backend.Backend.name backend);
  (* The SAT attackers know the backend's candidate family (Kerckhoffs:
     only the configuration is secret) and restrict their key variables
     to it; the oracle-sampling attacks are encoding-agnostic. *)
  let candidates =
    Sttc_backend.Backend.sat_candidates backend
      (Sttc_core.Hybrid.foundry_view hybrid)
      (Sttc_core.Hybrid.lut_ids hybrid)
  in
  let {
    Config.sat_timeout_s;
    seq_timeout_s;
    tt_budget;
    guess_rounds;
    brute_max_bits;
    seq_frames;
    seed;
    jobs;
    solver_mode;
  } =
    config
  in
  let seq_timeout_s =
    match seq_timeout_s with Some s -> s | None -> sat_timeout_s
  in
  (* An external solver arena may only be recycled when the attacks run
     sequentially: with [jobs > 1] the two SAT attacks are live at once
     and must not share one arena. *)
  let solver = if jobs <= 1 then solver else None in
  let sat_entry () =
    if sat_timeout_s <= 0. then
      {
        attack = "sat";
        verdict = Resisted;
        seconds = 0.;
        oracle_queries = 0;
        detail = "zero budget";
        sat_stats = None;
      }
    else
      match
        Sat_attack.run ~timeout_s:sat_timeout_s ~candidates ~mode:solver_mode
          ?solver hybrid
      with
    | Sat_attack.Broken b ->
        {
          attack = "sat";
          verdict =
            (if Sat_attack.verify_break hybrid b.bitstream then
               Recovered
             else Partial 0.);
          seconds = b.seconds;
          oracle_queries = b.queries;
          detail = Printf.sprintf "%d iterations" b.iterations;
          sat_stats = Some (snapshot_of_sat_stats b.stats);
        }
    | Sat_attack.Exhausted e ->
        {
          attack = "sat";
          verdict = Resisted;
          seconds = e.seconds;
          oracle_queries = 0;
          detail = e.reason;
          sat_stats = Some (snapshot_of_sat_stats e.stats);
        }
  in
  let tt_entry () =
    budgeted ~budget:sat_timeout_s "truth-table" (fun () ->
        let r = Tt_attack.run ~budget_patterns:tt_budget ~seed hybrid in
        {
          attack = "truth-table";
          verdict =
            (if r.Tt_attack.resolution >= 1.0 then Recovered
             else Partial r.Tt_attack.resolution);
          seconds = r.Tt_attack.seconds;
          oracle_queries = r.Tt_attack.oracle_queries;
          detail =
            Printf.sprintf "%d/%d LUTs fully resolved"
              r.Tt_attack.fully_resolved r.Tt_attack.lut_count;
          sat_stats = None;
        })
  in
  let tt_atpg_entry () =
    budgeted ~budget:sat_timeout_s "tt-atpg" (fun () ->
        let r =
          Tt_attack.run ~budget_patterns:(tt_budget / 4) ~targeted:true ~seed
            hybrid
        in
        {
          attack = "tt-atpg";
          verdict =
            (if r.Tt_attack.functional_resolution >= 1.0 then Recovered
             else Partial r.Tt_attack.functional_resolution);
          seconds = r.Tt_attack.seconds;
          oracle_queries = r.Tt_attack.oracle_queries;
          detail =
            Printf.sprintf "%.0f%% functional (%.0f%% raw)"
              (100. *. r.Tt_attack.functional_resolution)
              (100. *. r.Tt_attack.resolution);
          sat_stats = None;
        })
  in
  let guess_entry () =
    budgeted ~budget:sat_timeout_s "hill-climb" (fun () ->
        let r = Guess_attack.run ~rounds:guess_rounds ~seed hybrid in
        {
          attack = "hill-climb";
          verdict =
            (if r.Guess_attack.recovered then Recovered
             else Partial r.Guess_attack.agreement);
          seconds = r.Guess_attack.seconds;
          oracle_queries = r.Guess_attack.oracle_queries;
          detail =
            Printf.sprintf "%.1f%% probe agreement"
              (100. *. r.Guess_attack.agreement);
          sat_stats = None;
        })
  in
  let brute_entry () =
    budgeted ~budget:sat_timeout_s "brute-force" (fun () ->
        match Brute_force.run ~max_bits:brute_max_bits ~seed hybrid with
        | Brute_force.Broken b ->
            {
              attack = "brute-force";
              verdict = Recovered;
              seconds = b.seconds;
              oracle_queries = 0;
              detail =
                Printf.sprintf "%s candidates tested"
                  (Lognum.to_string b.candidates_tested);
              sat_stats = None;
            }
        | Brute_force.Infeasible i ->
            {
              attack = "brute-force";
              verdict = Resisted;
              seconds = 0.;
              oracle_queries = 0;
              detail =
                Printf.sprintf "space %s, ~%s years at %.0f cand/s"
                  (Lognum.to_string i.search_space)
                  (Lognum.to_string i.projected_years)
                  i.tested_rate_per_s;
              sat_stats = None;
            })
  in
  let seq_entry () =
    if seq_timeout_s <= 0. then
      {
        attack = "sat-seq";
        verdict = Resisted;
        seconds = 0.;
        oracle_queries = 0;
        detail = "zero budget";
        sat_stats = None;
      }
    else
      match
        Sat_attack.run_sequential ~frames:seq_frames ~timeout_s:seq_timeout_s
          ~candidates ~mode:solver_mode ?solver hybrid
      with
      | Sat_attack.Broken b ->
          {
            attack = "sat-seq";
            verdict = Recovered;
            seconds = b.seconds;
            oracle_queries = b.queries;
            detail =
              Printf.sprintf "%d iterations, %d-cycle sequences" b.iterations
                seq_frames;
            sat_stats = Some (snapshot_of_sat_stats b.stats);
          }
      | Sat_attack.Exhausted e ->
          {
            attack = "sat-seq";
            verdict = Resisted;
            seconds = e.seconds;
            oracle_queries = 0;
            detail = e.reason;
            sat_stats = Some (snapshot_of_sat_stats e.stats);
          }
  in
  let instrumented name f () =
    Sttc_obs.Span.with_ "harness.attack" ~cat:"attack"
      ~attrs:[ ("attack", name); ("circuit", circuit) ]
      (fun () ->
        let e = f () in
        Sttc_obs.Metrics.(
          incr "harness.attacks";
          incr ~by:e.oracle_queries "harness.oracle_queries";
          observe "harness.attack_seconds" e.seconds);
        e)
  in
  let attacks =
    [
      instrumented "sat" sat_entry;
      instrumented "sat-seq" seq_entry;
      instrumented "truth-table" tt_entry;
      instrumented "tt-atpg" tt_atpg_entry;
      instrumented "hill-climb" guess_entry;
      instrumented "brute-force" brute_entry;
    ]
  in
  let entries =
    if jobs <= 1 then List.map (fun f -> f ()) attacks
    else begin
      (* the attacks read the hybrid's three netlist views concurrently:
         force their lazy topology caches before the fan-out *)
      List.iter Sttc_netlist.Netlist.warm
        [
          Sttc_core.Hybrid.original hybrid;
          Sttc_core.Hybrid.programmed hybrid;
          Sttc_core.Hybrid.foundry_view hybrid;
        ];
      Sttc_util.Pool.with_pool ~jobs (fun pool ->
          Sttc_util.Pool.map_exn pool (fun f -> f ()) attacks)
    end
  in
  {
    circuit;
    algorithm;
    lut_count = Sttc_core.Hybrid.lut_count hybrid;
    entries;
  }

let verdict_string = function
  | Recovered -> "RECOVERED"
  | Partial f -> Printf.sprintf "partial %.0f%%" (100. *. f)
  | Resisted -> "resisted"

let pp_campaign fmt c =
  Format.fprintf fmt "%s / %s (%d LUTs):@\n" c.circuit c.algorithm c.lut_count;
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-12s %-14s %6.2fs %8d queries  %s" e.attack
        (verdict_string e.verdict) e.seconds e.oracle_queries e.detail;
      (match e.sat_stats with
      | Some snap ->
          let c = Sttc_obs.Metrics.counter_value snap in
          let kept =
            match Sttc_obs.Metrics.find snap "sat.kept_clauses" with
            | Some (Sttc_obs.Metrics.Gauge v) -> int_of_float v
            | _ -> 0
          in
          Format.fprintf fmt
            " [%d decisions, %d conflicts, %d learned, %d kept]"
            (c "sat.decisions") (c "sat.conflicts") (c "sat.learned") kept
      | None -> ());
      Format.fprintf fmt "@\n")
    c.entries

let to_table campaigns =
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Circuit", Sttc_util.Table.Left);
          ("Algorithm", Sttc_util.Table.Left);
          ("LUTs", Sttc_util.Table.Right);
          ("Attack", Sttc_util.Table.Left);
          ("Verdict", Sttc_util.Table.Left);
          ("Time (s)", Sttc_util.Table.Right);
          ("Queries", Sttc_util.Table.Right);
          ("Detail", Sttc_util.Table.Left);
        ]
  in
  List.iter
    (fun c ->
      List.iter
        (fun e ->
          Sttc_util.Table.add_row t
            [
              c.circuit;
              c.algorithm;
              string_of_int c.lut_count;
              e.attack;
              verdict_string e.verdict;
              Printf.sprintf "%.2f" e.seconds;
              string_of_int e.oracle_queries;
              e.detail;
            ])
        c.entries;
      Sttc_util.Table.add_separator t)
    campaigns;
  Sttc_util.Table.render t
