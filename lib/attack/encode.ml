module Netlist = Sttc_netlist.Netlist
module Cnf = Sttc_logic.Cnf
module Truth = Sttc_logic.Truth

type keyed = {
  cnf : Cnf.t;
  inputs : (string * Cnf.lit) list;
  outputs : (string * Cnf.lit) list;
  keys : (Netlist.node_id * Cnf.lit array) list;
  node_lits : Cnf.lit array;
}

let encode ?cnf ?(share_inputs = []) ?(share_keys = []) nl =
  let cnf = match cnf with Some c -> c | None -> Cnf.create () in
  let input_tbl = Hashtbl.create 32 in
  List.iter (fun (n, l) -> Hashtbl.replace input_tbl n l) share_inputs;
  let input_var name =
    match Hashtbl.find_opt input_tbl name with
    | Some l -> l
    | None ->
        let v = Cnf.fresh_var cnf in
        Hashtbl.add input_tbl name v;
        v
  in
  let key_tbl = Hashtbl.create 16 in
  List.iter (fun (id, ls) -> Hashtbl.replace key_tbl id ls) share_keys;
  let lit = Array.make (Netlist.node_count nl) 0 in
  let inputs = ref [] and keys = ref [] in
  Array.iter
    (fun id ->
      let node = Netlist.node nl id in
      match node.Netlist.kind with
      | Netlist.Pi | Netlist.Dff ->
          let l = input_var node.Netlist.name in
          if not (List.mem_assoc node.Netlist.name !inputs) then
            inputs := (node.Netlist.name, l) :: !inputs;
          lit.(id) <- l
      | Netlist.Const v ->
          let x = Cnf.fresh_var cnf in
          Cnf.add_clause cnf [ (if v then x else -x) ];
          lit.(id) <- x
      | Netlist.Gate fn ->
          let x = Cnf.fresh_var cnf in
          Cnf.encode_gate cnf x fn
            (Array.to_list (Array.map (fun s -> lit.(s)) node.Netlist.fanins));
          lit.(id) <- x
      | Netlist.Lut { arity; config = Some c } ->
          let x = Cnf.fresh_var cnf in
          let ins = Array.map (fun s -> lit.(s)) node.Netlist.fanins in
          (* fixed table: clauses row by row *)
          for r = 0 to (1 lsl arity) - 1 do
            let antecedent =
              List.init arity (fun k ->
                  let l = ins.(k) in
                  if (r lsr k) land 1 = 1 then -l else l)
            in
            let head = if Truth.row c r then x else -x in
            Cnf.add_clause cnf (head :: antecedent)
          done;
          lit.(id) <- x
      | Netlist.Lut { arity; config = None } ->
          let x = Cnf.fresh_var cnf in
          let ins = Array.map (fun s -> lit.(s)) node.Netlist.fanins in
          let key =
            match Hashtbl.find_opt key_tbl id with
            | Some k -> k
            | None ->
                let k = Array.init (1 lsl arity) (fun _ -> Cnf.fresh_var cnf) in
                Hashtbl.add key_tbl id k;
                k
          in
          if not (List.mem_assoc id !keys) then keys := (id, key) :: !keys;
          Cnf.encode_truth_lut cnf x ~key ~inputs:ins;
          lit.(id) <- x)
    (Netlist.topo_order nl);
  let outputs =
    Array.to_list
      (Array.map (fun (name, id) -> (name, lit.(id))) (Netlist.outputs nl))
    @ List.map
        (fun ff -> (Netlist.name nl ff, lit.((Netlist.fanins nl ff).(0))))
        (Netlist.dffs nl)
  in
  { cnf; inputs = List.rev !inputs; outputs; keys = List.rev !keys; node_lits = lit }

type unrolled = {
  u_cnf : Cnf.t;
  u_keys : (Netlist.node_id * Cnf.lit array) list;
  frame_pis : (string * Cnf.lit) list array;
  frame_pos : (string * Cnf.lit) list array;
}

let encode_unrolled ?cnf ?(share_keys = []) ?share_frame_pis ~frames nl =
  if frames < 1 then invalid_arg "Encode.encode_unrolled: frames";
  let cnf = match cnf with Some c -> c | None -> Cnf.create () in
  let n_pos = Array.length (Netlist.outputs nl) in
  let dff_names = List.map (Netlist.name nl) (Netlist.dffs nl) in
  (* reset state: constant-0 literals *)
  let state = ref (List.map (fun name ->
      let v = Cnf.fresh_var cnf in
      Cnf.add_clause cnf [ -v ];
      (name, v)) dff_names)
  in
  let keys = ref share_keys in
  let frame_pis = Array.make frames [] in
  let frame_pos = Array.make frames [] in
  for frame = 0 to frames - 1 do
    let share_inputs =
      !state
      @ (match share_frame_pis with
        | Some arr -> arr.(frame)
        | None -> [])
    in
    let keyed = encode ~cnf ~share_inputs ~share_keys:!keys nl in
    keys := keyed.keys;
    (* split the inputs back into PIs and state *)
    frame_pis.(frame) <-
      List.filter (fun (n, _) -> not (List.mem n dff_names)) keyed.inputs;
    (* outputs list is POs (first n_pos entries) then flip-flop D-inputs *)
    let pos = List.filteri (fun i _ -> i < n_pos) keyed.outputs in
    let ff_inputs = List.filteri (fun i _ -> i >= n_pos) keyed.outputs in
    frame_pos.(frame) <- pos;
    state := ff_inputs
  done;
  { u_cnf = cnf; u_keys = !keys; frame_pis; frame_pos }

let key_of_model keyed model =
  List.map
    (fun (id, key) ->
      let rows = Array.length key in
      let arity =
        let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
        log2 rows 0
      in
      let bits = ref 0L in
      Array.iteri
        (fun r l ->
          if Sttc_logic.Sat.model_value model l then
            bits := Int64.logor !bits (Int64.shift_left 1L r))
        key;
      (id, Truth.of_bits ~arity !bits))
    keyed.keys
