(** The attacker's black box: a programmed (configured) chip bought on the
    open market.

    The oracle exposes the combinational view — primary inputs and scan-
    accessible state in, primary outputs and next-state out — i.e. the
    strongest practical attacker, one with scan-chain access.  The paper
    notes real designs ship with scan disabled; the attack experiments
    quantify how much security remains {e even when} scan is open, and the
    query counter lets experiments report attack cost in oracle accesses
    (the unit of the paper's Fig. 3). *)

type t

val create : Sttc_core.Hybrid.t -> t
(** Builds the oracle from the secret programmed view. *)

val of_netlist : Sttc_netlist.Netlist.t -> t
(** From any fully-programmed netlist (for tests). *)

val input_names : t -> string list
(** PIs then flip-flop names — the assignment order for {!query}. *)

val output_names : t -> string list
(** PO names then flip-flop names (next-state outputs). *)

val query : t -> bool array -> bool array
(** One combinational-view evaluation.  Increments the counter. *)

val query_lanes : t -> int64 array -> int64 array
(** 64 parallel queries (counts as 64). *)

val queries : t -> int
(** Total patterns applied so far. *)

val query_sequence : t -> bool array list -> bool array list
(** Scan-disabled access: apply one primary-input vector per clock cycle
    starting from the reset state (all flip-flops 0) and observe only the
    primary outputs each cycle.  Counts one query per cycle.  This is the
    access model the paper assumes for deployed parts. *)
