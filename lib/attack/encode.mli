(** CNF encoding of a hybrid (foundry view) with {e symbolic} LUT
    configurations — the formula substrate of the SAT attack.

    Each unprogrammed LUT contributes [2^arity] key variables, one per
    truth-table row; programmed LUTs and CMOS gates encode as fixed
    logic. *)

type keyed = {
  cnf : Sttc_logic.Cnf.t;
  inputs : (string * Sttc_logic.Cnf.lit) list;
      (** PI and flip-flop (state) literals, by name *)
  outputs : (string * Sttc_logic.Cnf.lit) list;
      (** PO literals then flip-flop D-input literals, by name
          (matching [Oracle.output_names] order) *)
  keys : (Sttc_netlist.Netlist.node_id * Sttc_logic.Cnf.lit array) list;
      (** per-LUT key literals, row 0 first *)
  node_lits : Sttc_logic.Cnf.lit array;
      (** the literal carrying each node's signal, indexed by node id —
          lets callers constrain internal nets (targeted ATPG) *)
}

val encode :
  ?cnf:Sttc_logic.Cnf.t ->
  ?share_inputs:(string * Sttc_logic.Cnf.lit) list ->
  ?share_keys:(Sttc_netlist.Netlist.node_id * Sttc_logic.Cnf.lit array) list ->
  Sttc_netlist.Netlist.t ->
  keyed
(** [encode nl] builds a fresh formula (or extends [cnf]).
    [share_inputs] reuses existing literals for the named inputs (to tie
    two copies to the same input); [share_keys] likewise reuses key
    literals. *)

val key_of_model :
  keyed -> bool array -> (Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t) list
(** Extract a candidate bitstream from a SAT model. *)

type unrolled = {
  u_cnf : Sttc_logic.Cnf.t;
  u_keys : (Sttc_netlist.Netlist.node_id * Sttc_logic.Cnf.lit array) list;
  frame_pis : (string * Sttc_logic.Cnf.lit) list array;
      (** primary-input literals, one association list per frame *)
  frame_pos : (string * Sttc_logic.Cnf.lit) list array;
      (** primary-output literals per frame (no state outputs: the
          scan-disabled attacker cannot observe flip-flops) *)
}

val encode_unrolled :
  ?cnf:Sttc_logic.Cnf.t ->
  ?share_keys:(Sttc_netlist.Netlist.node_id * Sttc_logic.Cnf.lit array) list ->
  ?share_frame_pis:(string * Sttc_logic.Cnf.lit) list array ->
  frames:int ->
  Sttc_netlist.Netlist.t ->
  unrolled
(** Time-unrolled encoding for the sequential (scan-disabled) SAT attack:
    flip-flops start at the reset state (0) and each frame's next state
    feeds the following frame; LUT keys are shared across frames.
    [share_frame_pis] ties the per-frame inputs to an existing copy (for
    miters).  Raises [Invalid_argument] when [frames < 1]. *)
