module Netlist = Sttc_netlist.Netlist
module Scan = Sttc_netlist.Scan
module Simulator = Sttc_sim.Simulator

type t = {
  chain : Scan.chain;
  sim : Simulator.t;
  n_pis : int;  (** original primary inputs *)
  n_pos : int;  (** original primary outputs *)
  n_ffs : int;
  (* position of each original-order flip-flop inside the chain order *)
  chain_pos_of_orig : int array;
  scan_en_pos : int;
  mutable count : int;
  mutable cycles : int;
}

let create hybrid =
  let programmed = Sttc_core.Hybrid.programmed hybrid in
  let chain = Scan.insert programmed in
  let snl = chain.Scan.netlist in
  let sim = Simulator.create snl in
  let n_pis = List.length (Netlist.pis programmed) in
  let n_pos = Array.length (Netlist.outputs programmed) in
  let orig_dff_names =
    List.map (Netlist.name programmed) (Netlist.dffs programmed)
  in
  let chain_names =
    List.map (Netlist.name snl) chain.Scan.order
  in
  let chain_pos_of_orig =
    Array.of_list
      (List.map
         (fun name ->
           let rec find i = function
             | [] -> invalid_arg "Scan_oracle: chain misses a flip-flop"
             | n :: rest -> if n = name then i else find (i + 1) rest
           in
           find 0 chain_names)
         orig_dff_names)
  in
  let pis = Array.of_list (Netlist.pis snl) in
  let en_pos = ref (-1) in
  Array.iteri (fun i pi -> if pi = chain.Scan.scan_en then en_pos := i) pis;
  {
    chain;
    sim;
    n_pis;
    n_pos;
    n_ffs = List.length orig_dff_names;
    chain_pos_of_orig;
    scan_en_pos = !en_pos;
    count = 0;
    cycles = 0;
  }

let cycles_per_query t = (2 * t.n_ffs) + 1
let clock_cycles t = t.cycles
let queries t = t.count

let step_bools t v =
  t.cycles <- t.cycles + 1;
  let lanes = Array.map (fun b -> if b then -1L else 0L) v in
  Array.map (fun o -> Int64.logand o 1L = 1L) (Simulator.step t.sim lanes)

let query t inputs =
  if Array.length inputs <> t.n_pis + t.n_ffs then
    invalid_arg "Scan_oracle.query: input arity";
  t.count <- t.count + 1;
  let scanned_pi_count = t.n_pis + 2 in
  (* 1. shift the requested state in (chain order; tail-first feed) *)
  let chain_state = Array.make t.n_ffs false in
  Array.iteri
    (fun orig_idx pos -> chain_state.(pos) <- inputs.(t.n_pis + orig_idx))
    t.chain_pos_of_orig;
  List.iter
    (fun v -> ignore (step_bools t v))
    (Scan.shift_sequence t.chain chain_state);
  (* 2. one functional cycle: primary outputs observed, next state
        captured into the flip-flops *)
  let functional = Array.make scanned_pi_count false in
  Array.blit inputs 0 functional 0 t.n_pis;
  let pos_out = step_bools t functional in
  let primary_outputs = Array.sub pos_out 0 t.n_pos in
  (* 3. shift the captured state out through scan_out (last PO) *)
  let shift = Array.make scanned_pi_count false in
  shift.(t.scan_en_pos) <- true;
  (* scan_out is the extra output appended after the original POs; shift
     cycle k exposes the value captured at chain position m-1-k (the tail
     leaves first) *)
  let read = Array.make t.n_ffs false in
  for k = 0 to t.n_ffs - 1 do
    let outs = step_bools t shift in
    read.(t.n_ffs - 1 - k) <- outs.(t.n_pos)
  done;
  let next_state =
    Array.init t.n_ffs (fun orig_idx ->
        read.(t.chain_pos_of_orig.(orig_idx)))
  in
  Array.append primary_outputs next_state
