(** The oracle-guided SAT attack (Subramanyan et al. style) against hybrid
    STT-CMOS designs — the strongest of the "machine learning /
    de-camouflaging" attack family the paper cites as [11].

    Two copies of the foundry netlist share their inputs but carry
    independent symbolic keys; a satisfying assignment where the copies
    disagree yields a {e distinguishing input}, whose oracle response
    prunes all keys inconsistent with it.  When no distinguishing input
    remains, any surviving key is functionally correct.

    The attack holds {e one} [Sat.Solver] for its whole run: the miter
    clause sits behind an activation literal, each distinguishing input
    appends two oracle-constrained circuit copies to the live solver, and
    the final key extraction solves under assumptions on the same solver
    — nothing the solver learned is ever thrown away. *)

type solver_mode =
  | Incremental
      (** One persistent solver across all iterations (the default). *)
  | Scratch
      (** Rebuild a throwaway solver from the full CNF on every call —
          the pre-incremental cost profile, kept as the benchmark
          baseline.  Recovers the same key and verdict as
          [Incremental]. *)

type outcome =
  | Broken of {
      bitstream : (Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t) list;
      queries : int;  (** distinguishing patterns applied to the oracle *)
      iterations : int;
      seconds : float;
      stats : Sttc_logic.Sat.stats;  (** accumulated over all solver calls *)
    }
      (** A functionally correct configuration was recovered (it may
          differ syntactically from the secret one).  The bitstream is
          canonical — the lexicographically minimal consistent key — so
          both solver modes recover the identical one. *)
  | Exhausted of {
      iterations : int;
      seconds : float;
      reason : string;
      stats : Sttc_logic.Sat.stats;
    }
      (** Resource limit hit before convergence.  A conflict-budget
          exhaustion surfaces here (via [Sat.Unknown]) — it is never
          conflated with a proven UNSAT. *)

val run :
  ?max_iterations:int ->
  ?max_conflicts_per_call:int ->
  ?timeout_s:float ->
  ?candidates:(Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t list) list ->
  ?mode:solver_mode ->
  ?solver:Sttc_logic.Sat.Solver.t ->
  Sttc_core.Hybrid.t ->
  outcome
(** Defaults: 2000 iterations, 200k conflicts per solver call, 60 s,
    [Incremental].  The oracle is constructed internally from the
    hybrid's secret programmed view — the attacker code only ever
    touches the foundry view and the oracle interface.

    [solver] recycles an existing solver arena for the [Incremental]
    engine instead of allocating a fresh one: the attack
    {!Sttc_logic.Sat.Solver.reset}s it and then owns it for the whole
    run — the reuse discipline of a long-running service holding one
    solver per worker.  Because [reset] restores fresh-solver
    semantics, the recovered key is byte-identical with or without
    reuse.  Ignored under [Scratch].  Never share one arena across
    concurrently running attacks.

    [candidates] restricts the key space of specific LUTs to an explicit
    candidate list — the attacker model against {e camouflaged} cells,
    whose possible functions are known and few (the comparison of
    Section IV-A.3).  LUTs without an entry keep their full key space. *)

val verify_break :
  Sttc_core.Hybrid.t ->
  (Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t) list ->
  bool
(** Is the recovered bitstream functionally equivalent to the secret one
    (SAT equivalence of the two programmed views)? *)

val run_sequential :
  ?frames:int ->
  ?max_iterations:int ->
  ?max_conflicts_per_call:int ->
  ?timeout_s:float ->
  ?candidates:(Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t list) list ->
  ?mode:solver_mode ->
  ?solver:Sttc_logic.Sat.Solver.t ->
  Sttc_core.Hybrid.t ->
  outcome
(** The scan-disabled variant — the access model the paper assumes for
    deployed parts.  The attacker can only reset the chip, feed [frames]
    (default 5) input vectors, and watch the primary outputs; state is
    neither controllable nor observable.  Distinguishing {e sequences} are
    found on a time-unrolled double-key miter.  Keys that agree on all
    length-[frames] sequences may still differ on longer ones, so a
    recovered bitstream is verified and reported [Exhausted] with reason
    ["sequence-length limit"] when it is wrong — quantifying how much
    harder the sequential attack is than the combinational one.
    [candidates] restricts per-LUT key spaces exactly as in {!run}. *)
