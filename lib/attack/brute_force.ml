module Netlist = Sttc_netlist.Netlist
module Truth = Sttc_logic.Truth
module Lognum = Sttc_util.Lognum
module Rng = Sttc_util.Rng
module Hybrid = Sttc_core.Hybrid

type outcome =
  | Broken of {
      bitstream : (Netlist.node_id * Truth.t) list;
      candidates_tested : Lognum.t;
      seconds : float;
    }
  | Infeasible of {
      search_space : Lognum.t;
      projected_years : Lognum.t;
      tested_rate_per_s : float;
    }

let search_space hybrid =
  Lognum.pow (Lognum.of_int 2) (Hybrid.bitstream_bits hybrid)

(* Decompose a global candidate index into per-LUT truth tables. *)
let bitstream_of_index luts arities index =
  let rec go luts arities index acc =
    match (luts, arities) with
    | [], [] -> List.rev acc
    | id :: luts, a :: arities ->
        let rows = 1 lsl a in
        let mask = Int64.sub (Int64.shift_left 1L rows) 1L in
        let bits = Int64.logand index mask in
        go luts arities
          (Int64.shift_right_logical index rows)
          ((id, Truth.of_bits ~arity:a bits) :: acc)
    | _ -> assert false
  in
  go luts arities index []

let candidate_matches ~vectors ~rng oracle sim_template hybrid bitstream =
  ignore sim_template;
  let candidate = Hybrid.program_with hybrid bitstream in
  let sim = Sttc_sim.Simulator.create candidate in
  let nl = candidate in
  let pis = Array.of_list (Netlist.pis nl) in
  let dffs = Array.of_list (Netlist.dffs nl) in
  let batches = max 1 (vectors / 64) in
  let ok = ref true in
  let b = ref 0 in
  while !ok && !b < batches do
    incr b;
    let pi_lanes = Array.map (fun _ -> Rng.int64 rng) pis in
    let st_lanes = Array.map (fun _ -> Rng.int64 rng) dffs in
    Sttc_sim.Simulator.set_state sim st_lanes;
    let pos = Sttc_sim.Simulator.eval_comb sim pi_lanes in
    let values = Sttc_sim.Simulator.node_values sim in
    let next =
      Array.of_list
        (List.map (fun ff -> values.((Netlist.fanins nl ff).(0))) (Netlist.dffs nl))
    in
    let ours = Array.append pos next in
    let theirs = Oracle.query_lanes oracle (Array.append pi_lanes st_lanes) in
    if ours <> theirs then ok := false
  done;
  !ok

let run ?(max_bits = 18) ?(check_vectors = 512) ?(seed = 0xb0f) hybrid =
  let t0 = Unix.gettimeofday () in
  let bits = Hybrid.bitstream_bits hybrid in
  let space = search_space hybrid in
  let oracle = Oracle.create hybrid in
  let rng = Rng.make seed in
  let luts = Hybrid.lut_ids hybrid in
  let foundry = Hybrid.foundry_view hybrid in
  let arities =
    List.map
      (fun id ->
        match Netlist.kind foundry id with
        | Netlist.Lut { arity; _ } -> arity
        | _ -> assert false)
      luts
  in
  if bits > max_bits then begin
    (* measure the candidate-testing rate on a small prefix *)
    let sample = 64 in
    let t1 = Unix.gettimeofday () in
    for i = 0 to sample - 1 do
      ignore
        (candidate_matches ~vectors:64 ~rng oracle () hybrid
           (bitstream_of_index luts arities (Int64.of_int i)))
    done;
    let dt = Unix.gettimeofday () -. t1 in
    let rate = if dt <= 0. then 1e6 else float_of_int sample /. dt in
    Infeasible
      {
        search_space = space;
        projected_years =
          Lognum.seconds_to_years (Lognum.div space (Lognum.of_float rate));
        tested_rate_per_s = rate;
      }
  end
  else begin
    let total = Int64.shift_left 1L bits in
    let rec search i =
      if i >= total then None
      else
        let bitstream = bitstream_of_index luts arities i in
        if
          candidate_matches ~vectors:check_vectors ~rng oracle () hybrid
            bitstream
          && Sat_attack.verify_break hybrid bitstream
        then Some (bitstream, i)
        else search (Int64.add i 1L)
    in
    match search 0L with
    | Some (bitstream, i) ->
        Broken
          {
            bitstream;
            candidates_tested = Lognum.of_float (Int64.to_float (Int64.add i 1L));
            seconds = Unix.gettimeofday () -. t0;
          }
    | None ->
        (* cannot happen: the genuine bitstream is in the space *)
        assert false
  end
