(** Truth-table extraction — the "testing technique" of Section IV-A.1.

    For every missing gate, the attacker seeks input patterns that
    (a) justify the gate's fanins to a chosen row while every other
    missing gate's influence is blocked, and (b) propagate the gate's
    output to an observation point.  When both hold, one oracle query
    reveals one truth-table row.

    Against {e independent} selection most rows resolve quickly; against
    {e dependent} / {e parametric} selection the interference of missing
    gates on each other's justification and propagation paths leaves the
    tables partial — exactly the asymmetry Eqs. (1) and (2) formalise.

    Pattern search is random (bit-parallel ternary screening), matching
    an ATPG-with-unknowns workflow. *)

type lut_progress = {
  lut : Sttc_netlist.Netlist.node_id;
  resolved_rows : int;
  total_rows : int;
  unreachable_rows : int;
      (** rows proved functionally irrelevant by the targeted phase: the
          input combination can never occur at the LUT's fanins, or its
          effect can never be sensitized to an observation point under any
          configuration of the other missing gates *)
  candidates_left : Sttc_util.Lognum.t;
      (** remaining truth tables consistent with the resolved rows *)
}

type result = {
  per_lut : lut_progress list;
  fully_resolved : int;  (** LUTs with complete truth tables *)
  lut_count : int;
  resolution : float;  (** resolved rows / total rows, in [0,1] *)
  functional_resolution : float;
      (** (resolved + proven-unreachable) rows / total rows: 1.0 means the
          attacker knows everything that matters *)
  patterns_tried : int;
  oracle_queries : int;
  seconds : float;
}

val run :
  ?budget_patterns:int ->
  ?targeted:bool ->
  ?target_attempts:int ->
  ?seed:int ->
  Sttc_core.Hybrid.t ->
  result
(** Default budget: 20_000 candidate patterns.

    With [targeted:true] (default false), rows still unresolved after the
    random phase get an ATPG pass: a SAT query proposes an input pattern
    that justifies the row at the LUT's fanins and sensitizes its output
    to an observation point under {e some} assignment of the other
    missing gates; ternary simulation then certifies the pattern works for
    {e every} assignment before the oracle is spent on it
    ([target_attempts] proposals per row, default 4).  Against independent
    selection this pass typically completes the truth tables — the attack
    Eq. (1) prices; against dependent selection certification keeps
    failing, which is Eq. (2)'s whole point. *)

val pp_result : Format.formatter -> result -> unit
