(** One-call attack campaign against a hybrid: run every implemented
    attack under resource limits and classify the outcome — the empirical
    counterpart of the paper's analytic Fig. 3. *)

type verdict =
  | Recovered  (** functionally correct bitstream extracted *)
  | Partial of float  (** fraction of configuration resolved *)
  | Resisted  (** attack exhausted its budget with nothing usable *)

type entry = {
  attack : string;
  verdict : verdict;
  seconds : float;
  oracle_queries : int;
  detail : string;
  sat_stats : Sttc_obs.Metrics.snapshot option;
      (** accumulated solver statistics as a metrics snapshot
          ([sat.decisions], [sat.conflicts], ... counters and the
          [sat.kept_clauses] gauge) — [Some] for the two SAT-based
          attacks, [None] for the rest.  The same series names the
          metrics exporter writes, so solver telemetry has one
          representation end to end. *)
}

type campaign = {
  circuit : string;
  algorithm : string;
  lut_count : int;
  entries : entry list;
}

val run :
  ?sat_timeout_s:float ->
  ?seq_timeout_s:float ->
  ?tt_budget:int ->
  ?guess_rounds:int ->
  ?brute_max_bits:int ->
  ?seq_frames:int ->
  ?seed:int ->
  ?jobs:int ->
  ?solver_mode:Sat_attack.solver_mode ->
  circuit:string ->
  algorithm:string ->
  Sttc_core.Hybrid.t ->
  campaign
(** Runs six attacks: the combinational (scan-assumed) SAT attack, the
    sequential scan-disabled SAT attack on [seq_frames]-cycle sequences
    (default 4), random truth-table extraction, SAT-targeted truth-table
    extraction (ATPG), hill-climbing and brute force.

    [sat_timeout_s] is the wall-clock budget for {e every} attack: the
    SAT variants check it between solver iterations, the others are
    interrupted through {!Sttc_util.Timing.with_timeout} and classified
    [Resisted] on expiry.  [seq_timeout_s] gives the sequential SAT
    attack its own budget (it does bounded-unrolling work per iteration,
    so the combinational budget is usually too tight); it defaults to
    [sat_timeout_s].  A zero or negative budget skips the attack
    entirely and reports [Resisted] with detail ["zero budget"].

    [solver_mode] selects the SAT engine discipline for both SAT
    attacks: one persistent incremental solver per attack (the default,
    [Sat_attack.Incremental]) or a scratch solver per iteration
    ([Sat_attack.Scratch], the benchmark baseline).

    [jobs > 1] runs the six attacks concurrently on a
    {!Sttc_util.Pool}; every attack is seeded from [seed] alone, so the
    campaign is identical at any job count.  Off the main domain —
    under [jobs > 1], or when the whole campaign runs inside a pool
    task — budgets are enforced cooperatively instead of by signal: an
    attack that overruns is reported as exhausted when it returns. *)

val verdict_string : verdict -> string
(** ["RECOVERED"], ["partial NN%"] or ["resisted"] — the rendering used
    by {!pp_campaign} and {!to_table}. *)

val pp_campaign : Format.formatter -> campaign -> unit
val to_table : campaign list -> string
