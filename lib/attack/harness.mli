(** One-call attack campaign against a hybrid: run every implemented
    attack under resource limits and classify the outcome — the empirical
    counterpart of the paper's analytic Fig. 3. *)

type verdict =
  | Recovered  (** functionally correct bitstream extracted *)
  | Partial of float  (** fraction of configuration resolved *)
  | Resisted  (** attack exhausted its budget with nothing usable *)

type entry = {
  attack : string;
  verdict : verdict;
  seconds : float;
  oracle_queries : int;
  detail : string;
  sat_stats : Sttc_obs.Metrics.snapshot option;
      (** accumulated solver statistics as a metrics snapshot
          ([sat.decisions], [sat.conflicts], ... counters and the
          [sat.kept_clauses] gauge) — [Some] for the two SAT-based
          attacks, [None] for the rest.  The same series names the
          metrics exporter writes, so solver telemetry has one
          representation end to end. *)
}

type campaign = {
  circuit : string;
  algorithm : string;
  lut_count : int;
  entries : entry list;
}

(** The typed campaign configuration — the one schema the CLI, the
    campaign runner and the serve daemon all construct, mirroring
    {!Sttc_experiments.Runner.Config}: a record with a [default] value
    and [with_*] setters, plus a JSON codec on {!Sttc_obs.Json} so the
    same fields parse from a manifest, a command line or a serve
    request. *)
module Config : sig
  type t = {
    sat_timeout_s : float;  (** wall budget per attack (default 30) *)
    seq_timeout_s : float option;
        (** sequential-SAT override; defaults to [sat_timeout_s] *)
    tt_budget : int;  (** truth-table pattern budget (default 4000) *)
    guess_rounds : int;  (** hill-climb rounds (default 8) *)
    brute_max_bits : int;  (** brute-force feasibility bound (default 16) *)
    seq_frames : int;  (** unrolled frames for sat-seq (default 4) *)
    seed : int;  (** default [0xcafe] *)
    jobs : int;  (** concurrent attacks; 1 = sequential (default) *)
    solver_mode : Sat_attack.solver_mode;  (** default [Incremental] *)
  }

  val default : t

  val with_sat_timeout_s : float -> t -> t
  val with_seq_timeout_s : float option -> t -> t
  val with_tt_budget : int -> t -> t
  val with_guess_rounds : int -> t -> t
  val with_brute_max_bits : int -> t -> t
  val with_seq_frames : int -> t -> t
  val with_seed : int -> t -> t
  val with_jobs : int -> t -> t
  val with_solver_mode : Sat_attack.solver_mode -> t -> t

  val to_json : t -> Sttc_obs.Json.t
  (** Every field, [seq_timeout_s] omitted when [None];
      [solver_mode] as ["incremental"] / ["scratch"]. *)

  val of_json : Sttc_obs.Json.t -> (t, string) result
  (** Any object whose present fields are well-typed; missing fields
      take their {!default}s, so [{}] parses to [default]. *)
end

val attack :
  ?solver:Sttc_logic.Sat.Solver.t ->
  ?backend:Sttc_backend.Backend.t ->
  ?config:Config.t ->
  circuit:string ->
  algorithm:string ->
  Sttc_core.Hybrid.t ->
  campaign
(** Runs six attacks: the combinational (scan-assumed) SAT attack, the
    sequential scan-disabled SAT attack on [seq_frames]-cycle sequences
    (default 4), random truth-table extraction, SAT-targeted truth-table
    extraction (ATPG), hill-climbing and brute force.

    [sat_timeout_s] is the wall-clock budget for {e every} attack: the
    SAT variants check it between solver iterations, the others are
    interrupted through {!Sttc_util.Timing.with_timeout} and classified
    [Resisted] on expiry.  [seq_timeout_s] gives the sequential SAT
    attack its own budget (it does bounded-unrolling work per iteration,
    so the combinational budget is usually too tight); it defaults to
    [sat_timeout_s].  A zero or negative budget skips the attack
    entirely and reports [Resisted] with detail ["zero budget"].

    [solver_mode] selects the SAT engine discipline for both SAT
    attacks: one persistent incremental solver per attack (the default,
    [Sat_attack.Incremental]) or a scratch solver per iteration
    ([Sat_attack.Scratch], the benchmark baseline).

    [jobs > 1] runs the six attacks concurrently on a
    {!Sttc_util.Pool}; every attack is seeded from [seed] alone, so the
    campaign is identical at any job count.  Off the main domain —
    under [jobs > 1], or when the whole campaign runs inside a pool
    task — budgets are enforced cooperatively instead of by signal: an
    attack that overruns is reported as exhausted when it returns.

    [solver] recycles a persistent {!Sttc_logic.Sat.Solver} arena for
    the SAT attacks (the serve daemon holds one per worker).  It is
    honoured only when [config.jobs <= 1]: with concurrent attacks the
    two SAT engines would race on one arena, so the harness silently
    falls back to fresh solvers.  Recycling never changes results —
    {!Sttc_logic.Sat.Solver.reset} restores fresh-solver semantics.

    [backend] (default {!Sttc_backend.Backend.stt}) shapes the
    attacker's knowledge: under a candidate-restricted backend the two
    SAT attacks constrain every LUT's key to the known candidate family
    ([Sat_attack]'s [~candidates]), while the oracle-sampling attacks
    run unchanged.  The recovered bitstream is still verified against
    the real oracle either way. *)

val verdict_string : verdict -> string
(** ["RECOVERED"], ["partial NN%"] or ["resisted"] — the rendering used
    by {!pp_campaign} and {!to_table}. *)

val pp_campaign : Format.formatter -> campaign -> unit
val to_table : campaign list -> string
