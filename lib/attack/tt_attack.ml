module Netlist = Sttc_netlist.Netlist
module Ternary = Sttc_logic.Ternary
module Ternary_sim = Sttc_sim.Ternary_sim
module Rng = Sttc_util.Rng
module Lognum = Sttc_util.Lognum
module Hybrid = Sttc_core.Hybrid

type lut_progress = {
  lut : Netlist.node_id;
  resolved_rows : int;
  total_rows : int;
  unreachable_rows : int;
  candidates_left : Lognum.t;
}

type result = {
  per_lut : lut_progress list;
  fully_resolved : int;
  lut_count : int;
  resolution : float;
  functional_resolution : float;
  patterns_tried : int;
  oracle_queries : int;
  seconds : float;
}

let run ?(budget_patterns = 20_000) ?(targeted = false) ?(target_attempts = 4)
    ?(seed = 0xa77ac) hybrid =
  let t0 = Unix.gettimeofday () in
  let foundry = Hybrid.foundry_view hybrid in
  let oracle = Oracle.create hybrid in
  let rng = Rng.make seed in
  let luts = Hybrid.lut_ids hybrid in
  let pi_ids = Array.of_list (Netlist.pis foundry) in
  let dff_ids = Array.of_list (Netlist.dffs foundry) in
  let n_in = Array.length pi_ids + Array.length dff_ids in
  let arity_of id =
    match Netlist.kind foundry id with
    | Netlist.Lut { arity; _ } -> arity
    | _ -> invalid_arg "Tt_attack: not a LUT"
  in
  (* resolved.(lut) is a (row -> bool) table being filled in *)
  let resolved = Hashtbl.create 16 in
  let unreachable = Hashtbl.create 16 in
  List.iter
    (fun id ->
      Hashtbl.add resolved id (Array.make (1 lsl arity_of id) None);
      Hashtbl.add unreachable id (Array.make (1 lsl arity_of id) false))
    luts;
  (* Pre-build, per LUT, the two foundry variants where the LUT is forced
     to constant 0 / 1 (every other LUT stays unknown).  These do not
     depend on the pattern. *)
  let forced =
    List.map
      (fun id ->
        let const v =
          (if v then Sttc_logic.Truth.const_true
           else Sttc_logic.Truth.const_false)
            ~arity:(arity_of id)
        in
        ( id,
          ( Sttc_netlist.Transform.program_luts foundry [ (id, const false) ],
            Sttc_netlist.Transform.program_luts foundry [ (id, const true) ] ) ))
      luts
  in
  let row_of_fanins values id =
    (* the row index addressed by the LUT's (known) fanin values *)
    let fanins = Netlist.fanins foundry id in
    let rec go k acc =
      if k >= Array.length fanins then Some acc
      else
        match values.(fanins.(k)) with
        | Ternary.Zero -> go (k + 1) acc
        | Ternary.One -> go (k + 1) (acc lor (1 lsl k))
        | Ternary.X -> None
    in
    go 0 0
  in
  let out_count = List.length (Oracle.output_names oracle) in
  ignore out_count;
  let patterns = ref 0 in
  while !patterns < budget_patterns do
    incr patterns;
    (* random primary/state assignment *)
    let assignment = Array.init n_in (fun _ -> Rng.bool rng) in
    let pis =
      Array.init (Array.length pi_ids) (fun i ->
          Ternary.of_bool assignment.(i))
    in
    let state =
      Array.init (Array.length dff_ids) (fun i ->
          Ternary.of_bool assignment.(Array.length pi_ids + i))
    in
    (* For each LUT with unresolved rows, test observability of the row
       this pattern justifies. *)
    List.iter
      (fun (id, (nl0, nl1)) ->
        let table = Hashtbl.find resolved id in
        (* ternary sim with LUT id forced to 0 / 1, everything else X *)
        let v0 = Ternary_sim.eval_comb ~state nl0 pis
        and v1 = Ternary_sim.eval_comb ~state nl1 pis in
        match row_of_fanins v0 id with
        | None -> ()
        | Some row when table.(row) <> None -> ()
        | Some row ->
            (* find an observation point where the two forcings are known
               and different *)
            let obs =
              let outs0 = Ternary_sim.outputs foundry v0
              and outs1 = Ternary_sim.outputs foundry v1 in
              let candidates = ref [] in
              Array.iteri
                (fun i a ->
                  let b = outs1.(i) in
                  match (a, b) with
                  | Ternary.Zero, Ternary.One | Ternary.One, Ternary.Zero ->
                      candidates := `Po (i, a) :: !candidates
                  | _ -> ())
                outs0;
              (* flip-flop D inputs are also observable via scan *)
              List.iteri
                (fun i ff ->
                  let d = (Netlist.fanins foundry ff).(0) in
                  match (v0.(d), v1.(d)) with
                  | Ternary.Zero, Ternary.One | Ternary.One, Ternary.Zero ->
                      candidates := `Ff (i, v0.(d)) :: !candidates
                  | _ -> ())
                (Netlist.dffs foundry);
              !candidates
            in
            (match obs with
            | [] -> ()
            | point :: _ ->
                (* query the oracle; the observed value tells which forcing
                   matches reality, i.e. the row's truth value *)
                let out = Oracle.query oracle assignment in
                let n_pos = Array.length (Netlist.outputs foundry) in
                let observed, zero_value =
                  match point with
                  | `Po (i, a) -> (out.(i), a)
                  | `Ff (i, a) -> (out.(n_pos + i), a)
                in
                let row_value =
                  (* if the oracle agrees with the v:=0 simulation, the
                     row is 0 *)
                  match zero_value with
                  | Ternary.Zero -> observed
                  | Ternary.One -> not observed
                  | Ternary.X -> assert false
                in
                table.(row) <- Some row_value))
      forced
  done;
  (* ---------- targeted ATPG phase ---------- *)
  if targeted then begin
    let module Cnf = Sttc_logic.Cnf in
    let module Sat = Sttc_logic.Sat in
    (* order of oracle inputs: PIs then state, as the random phase uses *)
    let justifiable id row =
      (* can the row even occur at the LUT's fanins? *)
      let c = Encode.encode foundry in
      Array.iteri
        (fun k src ->
          let l = c.Encode.node_lits.(src) in
          Sttc_logic.Cnf.add_clause c.Encode.cnf
            [ (if (row lsr k) land 1 = 1 then l else -l) ])
        (Netlist.fanins foundry id);
      match Sttc_logic.Sat.solve ~max_conflicts:50_000 c.Encode.cnf with
      | Sttc_logic.Sat.Unsat -> false
      | Sttc_logic.Sat.Sat _ | Sttc_logic.Sat.Unknown _ -> true
    in
    let resolve_row id row =
      let table = Hashtbl.find resolved id in
      if table.(row) <> None then ()
      else if not (justifiable id row) then
        (Hashtbl.find unreachable id).(row) <- true
      else begin
        let attempt = ref 0 in
        let blocked = ref [] in
        while table.(row) = None && !attempt < target_attempts do
          incr attempt;
          (* copy A forces the LUT low, copy B high; other keys shared *)
          let c1 = Encode.encode foundry in
          let cnf = c1.Encode.cnf in
          let other_keys =
            List.filter (fun (k, _) -> k <> id) c1.Encode.keys
          in
          let c2 =
            Encode.encode ~cnf ~share_inputs:c1.Encode.inputs
              ~share_keys:other_keys foundry
          in
          Cnf.add_clause cnf [ -c1.Encode.node_lits.(id) ];
          Cnf.add_clause cnf [ c2.Encode.node_lits.(id) ];
          (* justify the row at the LUT fanins *)
          Array.iteri
            (fun k src ->
              let l = c1.Encode.node_lits.(src) in
              Cnf.add_clause cnf [ (if (row lsr k) land 1 = 1 then l else -l) ])
            (Netlist.fanins foundry id);
          (* sensitize: some observation point differs *)
          let diffs =
            List.map2
              (fun (_, l1) (_, l2) ->
                let d = Cnf.fresh_var cnf in
                Cnf.encode_xor cnf d l1 l2;
                d)
              c1.Encode.outputs c2.Encode.outputs
          in
          Cnf.add_clause cnf diffs;
          (* block previously failed patterns *)
          List.iter
            (fun bits ->
              Cnf.add_clause cnf
                (List.mapi
                   (fun i (_, l) -> if bits.(i) then -l else l)
                   c1.Encode.inputs))
            !blocked;
          match Sat.solve ~max_conflicts:50_000 cnf with
          | Sat.Unsat when !blocked = [] ->
              (* justifiable but never observable: the configuration bit
                 cannot influence any observation point under any key of
                 the other missing gates, so it is as functionally
                 irrelevant as an unreachable row *)
              (Hashtbl.find unreachable id).(row) <- true;
              attempt := target_attempts
          | Sat.Unknown _ | Sat.Unsat -> attempt := target_attempts
          | Sat.Sat model ->
              let bits =
                Array.of_list
                  (List.map
                     (fun (_, l) -> Sat.model_value model l)
                     c1.Encode.inputs)
              in
              (* certify under all other-key assignments with ternary sim *)
              let nl0, nl1 = List.assoc id forced in
              let pis_t =
                Array.init (Array.length pi_ids) (fun i ->
                    Ternary.of_bool bits.(i))
              in
              let state_t =
                Array.init (Array.length dff_ids) (fun i ->
                    Ternary.of_bool bits.(Array.length pi_ids + i))
              in
              let v0 = Ternary_sim.eval_comb ~state:state_t nl0 pis_t in
              let v1 = Ternary_sim.eval_comb ~state:state_t nl1 pis_t in
              let certified = ref None in
              (match row_of_fanins v0 id with
              | Some r when r = row ->
                  let outs0 = Ternary_sim.outputs foundry v0
                  and outs1 = Ternary_sim.outputs foundry v1 in
                  Array.iteri
                    (fun i a ->
                      if !certified = None then
                        match (a, outs1.(i)) with
                        | Ternary.Zero, Ternary.One
                        | Ternary.One, Ternary.Zero ->
                            certified := Some (`Po (i, a))
                        | _ -> ())
                    outs0;
                  List.iteri
                    (fun i ff ->
                      if !certified = None then
                        let d = (Netlist.fanins foundry ff).(0) in
                        match (v0.(d), v1.(d)) with
                        | Ternary.Zero, Ternary.One
                        | Ternary.One, Ternary.Zero ->
                            certified := Some (`Ff (i, v0.(d)))
                        | _ -> ())
                    (Netlist.dffs foundry)
              | _ -> ());
              (match !certified with
              | None -> blocked := bits :: !blocked
              | Some point ->
                  let out = Oracle.query oracle bits in
                  let n_pos = Array.length (Netlist.outputs foundry) in
                  let observed, zero_value =
                    match point with
                    | `Po (i, a) -> (out.(i), a)
                    | `Ff (i, a) -> (out.(n_pos + i), a)
                  in
                  let row_value =
                    match zero_value with
                    | Ternary.Zero -> observed
                    | Ternary.One -> not observed
                    | Ternary.X -> assert false
                  in
                  table.(row) <- Some row_value)
        done
      end
    in
    List.iter
      (fun id ->
        let table = Hashtbl.find resolved id in
        Array.iteri (fun row v -> if v = None then resolve_row id row) table)
      luts
  end;
  let per_lut =
    List.map
      (fun id ->
        let table = Hashtbl.find resolved id in
        let total = Array.length table in
        let done_ =
          Array.fold_left
            (fun acc v -> if v = None then acc else acc + 1)
            0 table
        in
        let unreach =
          Array.fold_left
            (fun acc v -> if v then acc + 1 else acc)
            0 (Hashtbl.find unreachable id)
        in
        {
          lut = id;
          resolved_rows = done_;
          total_rows = total;
          unreachable_rows = unreach;
          candidates_left = Lognum.pow (Lognum.of_int 2) (total - done_);
        })
      luts
  in
  let total_rows = List.fold_left (fun a p -> a + p.total_rows) 0 per_lut in
  let done_rows = List.fold_left (fun a p -> a + p.resolved_rows) 0 per_lut in
  let settled_rows =
    List.fold_left (fun a p -> a + p.resolved_rows + p.unreachable_rows) 0 per_lut
  in
  {
    per_lut;
    fully_resolved =
      List.length (List.filter (fun p -> p.resolved_rows = p.total_rows) per_lut);
    lut_count = List.length luts;
    resolution =
      (if total_rows = 0 then 0.
       else float_of_int done_rows /. float_of_int total_rows);
    functional_resolution =
      (if total_rows = 0 then 0.
       else float_of_int settled_rows /. float_of_int total_rows);
    patterns_tried = !patterns;
    oracle_queries = Oracle.queries oracle;
    seconds = Unix.gettimeofday () -. t0;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "tt-attack: %d/%d LUTs fully resolved, %.1f%% of rows (%.1f%% functional), \
     %d patterns, %d oracle queries, %.2fs"
    r.fully_resolved r.lut_count (100. *. r.resolution)
    (100. *. r.functional_resolution) r.patterns_tried r.oracle_queries
    r.seconds
