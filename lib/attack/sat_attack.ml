module Netlist = Sttc_netlist.Netlist
module Cnf = Sttc_logic.Cnf
module Sat = Sttc_logic.Sat
module Hybrid = Sttc_core.Hybrid

type solver_mode = Incremental | Scratch

type outcome =
  | Broken of {
      bitstream : (Netlist.node_id * Sttc_logic.Truth.t) list;
      queries : int;
      iterations : int;
      seconds : float;
      stats : Sat.stats;
    }
  | Exhausted of {
      iterations : int;
      seconds : float;
      reason : string;
      stats : Sat.stats;
    }

let add_stats (a : Sat.stats) (b : Sat.stats) : Sat.stats =
  {
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    conflicts = a.conflicts + b.conflicts;
    learned = a.learned + b.learned;
    kept = b.kept;
    removed = a.removed + b.removed;
    restarts = a.restarts + b.restarts;
  }

(* The whole attack talks to the solver through one closure.
   Incremental: a single live solver accumulates every clause of [cnf]
   (via the sync cursor) together with everything it learns, and each
   call just pulls in the new clauses.  Scratch: every call rebuilds a
   throwaway solver from the full formula — the pre-incremental cost
   profile, kept as the benchmark baseline.  Either way the answers are
   exact, so both modes agree on every SAT/UNSAT question. *)
let make_solver ?reuse mode cnf =
  let stats = ref Sat.zero_stats in
  let live =
    match mode with
    | Incremental -> (
        (* a recycled arena behaves exactly like a fresh solver
           (Sat.Solver.reset contract), so reuse cannot change the
           recovered key *)
        match reuse with
        | Some s ->
            Sat.Solver.reset s;
            Some s
        | None -> Some (Sat.Solver.create ()))
    | Scratch -> None
  in
  let solve ?assumptions ?max_conflicts () =
    let r =
      match live with
      | Some s ->
          Sat.Solver.sync s cnf;
          Sat.Solver.solve ?assumptions ?max_conflicts s
      | None -> Sat.Solver.solve ?assumptions ?max_conflicts (Sat.Solver.of_cnf cnf)
    in
    stats := add_stats !stats (Sat.last_stats ());
    r
  in
  (solve, fun () -> !stats)

(* Canonical key extraction: the lexicographically minimal key (in key
   declaration order, preferring 0 bits) consistent with the accumulated
   constraints, found by fixing one bit at a time under assumptions.
   After the DIP loop terminates, the consistent keys are exactly the
   functionally correct ones, a set independent of solver history — so
   Incremental and Scratch recover byte-identical bitstreams.  The
   cached model always satisfies every fixed assumption (a bit is only
   fixed to 1 when the model already agrees, or to 0 after a witnessing
   solve), which skips the solve for every bit the current model already
   has at 0 and makes the final model the canonical one. *)
let canonical_key
    (solve :
      ?assumptions:Cnf.lit list -> ?max_conflicts:int -> unit -> Sat.result)
    keys ~act =
  match solve ~assumptions:[ -act ] () with
  | Sat.Unsat | Sat.Unknown _ -> None
  | Sat.Sat m0 ->
      let model = ref m0 in
      let fixed = ref [ -act ] in
      List.iter
        (fun (_, key) ->
          Array.iter
            (fun l ->
              if not (Sat.model_value !model l) then fixed := -l :: !fixed
              else
                match solve ~assumptions:(-l :: !fixed) () with
                | Sat.Sat m ->
                    model := m;
                    fixed := -l :: !fixed
                | Sat.Unsat -> fixed := l :: !fixed
                | Sat.Unknown _ -> () (* unbudgeted: cannot happen *))
            key)
        keys;
      Some !model

(* One-hot candidate restriction: the keyed LUT must implement one of the
   listed truth tables. *)
let restrict_keys cnf keys candidates =
  List.iter
    (fun (id, key) ->
      match List.assoc_opt id candidates with
      | None -> ()
      | Some tables ->
          if tables = [] then invalid_arg "Sat_attack: empty candidate list";
          let selectors =
            List.map
              (fun table ->
                let s = Cnf.fresh_var cnf in
                Array.iteri
                  (fun r l ->
                    (* s -> key.(r) = table row r *)
                    Cnf.add_clause cnf
                      [ -s; (if Sttc_logic.Truth.row table r then l else -l) ])
                  key;
                s)
              tables
          in
          Cnf.add_clause cnf selectors)
    keys

let run ?(max_iterations = 2000) ?(max_conflicts_per_call = 200_000)
    ?(timeout_s = 60.) ?(candidates = []) ?(mode = Incremental) ?solver hybrid
    =
  let t0 = Unix.gettimeofday () in
  let foundry = Hybrid.foundry_view hybrid in
  let oracle = Oracle.create hybrid in
  (* Copy 1 and copy 2 share inputs, have independent keys. *)
  let c1 = Encode.encode foundry in
  let c2 =
    Encode.encode ~cnf:c1.Encode.cnf ~share_inputs:c1.Encode.inputs foundry
  in
  let cnf = c1.Encode.cnf in
  restrict_keys cnf c1.Encode.keys candidates;
  restrict_keys cnf c2.Encode.keys candidates;
  (* Miter: some output differs — but only under the activation literal,
     so the DIP search (assumption [act]) and the final key extraction
     (assumption [-act]) run on the same solver and the same clauses. *)
  let diffs =
    List.map2
      (fun (_, l1) (_, l2) ->
        let d = Cnf.fresh_var cnf in
        Cnf.encode_xor cnf d l1 l2;
        d)
      c1.Encode.outputs c2.Encode.outputs
  in
  let act = Cnf.fresh_var cnf in
  Cnf.add_clause cnf (-act :: diffs);
  let solve, stats = make_solver ?reuse:solver mode cnf in
  (* Constrain both key copies with an observed I/O pair.  The miter's
     inputs must stay free, so each observation gets fresh circuit copies
     sharing only the key variables; the incremental solver just absorbs
     the new clauses, keeping everything it has learned. *)
  let constrain_io input_bits output_bits =
    let fresh1 = Encode.encode ~cnf ~share_keys:c1.Encode.keys foundry in
    let fresh2 =
      Encode.encode ~cnf ~share_inputs:fresh1.Encode.inputs
        ~share_keys:c2.Encode.keys foundry
    in
    List.iteri
      (fun i (_, l) ->
        Cnf.add_clause cnf [ (if input_bits.(i) then l else -l) ])
      fresh1.Encode.inputs;
    List.iteri
      (fun i (_, l) ->
        Cnf.add_clause cnf [ (if output_bits.(i) then l else -l) ])
      fresh1.Encode.outputs;
    List.iteri
      (fun i (_, l) ->
        Cnf.add_clause cnf [ (if output_bits.(i) then l else -l) ])
      fresh2.Encode.outputs
  in
  let input_count = List.length c1.Encode.inputs in
  let rec loop iteration =
    let elapsed = Unix.gettimeofday () -. t0 in
    if iteration > max_iterations then
      Exhausted
        {
          iterations = iteration - 1;
          seconds = elapsed;
          reason = "iteration limit";
          stats = stats ();
        }
    else if elapsed > timeout_s then
      Exhausted
        {
          iterations = iteration - 1;
          seconds = elapsed;
          reason = "timeout";
          stats = stats ();
        }
    else
      match
        Sttc_obs.Span.with_ "sat.dip_iteration" ~cat:"attack"
          ~attrs:[ ("iteration", string_of_int iteration) ]
          (fun () ->
            solve ~assumptions:[ act ] ~max_conflicts:max_conflicts_per_call ())
      with
      | Sat.Unknown _ ->
          Exhausted
            {
              iterations = iteration - 1;
              seconds = Unix.gettimeofday () -. t0;
              reason = "conflict budget";
              stats = stats ();
            }
      | Sat.Unsat -> (
          (* No distinguishing input: every key consistent with the
             recorded I/O pairs is functionally correct; extract the
             canonical one under the deactivated miter. *)
          match canonical_key solve c1.Encode.keys ~act with
          | Some model ->
              Broken
                {
                  bitstream = Encode.key_of_model c1 model;
                  queries = Oracle.queries oracle;
                  iterations = iteration - 1;
                  seconds = Unix.gettimeofday () -. t0;
                  stats = stats ();
                }
          | None ->
              Exhausted
                {
                  iterations = iteration - 1;
                  seconds = Unix.gettimeofday () -. t0;
                  reason = "no consistent key (internal error)";
                  stats = stats ();
                })
      | Sat.Sat model ->
          (* distinguishing input from the model *)
          let input_bits = Array.make input_count false in
          List.iteri
            (fun i (_, l) -> input_bits.(i) <- Sat.model_value model l)
            c1.Encode.inputs;
          let output_bits = Oracle.query oracle input_bits in
          constrain_io input_bits output_bits;
          loop (iteration + 1)
  in
  loop 1

let verify_break hybrid bitstream =
  let candidate = Hybrid.program_with hybrid bitstream in
  match Sttc_sim.Equiv.check_sat (Hybrid.programmed hybrid) candidate with
  | Sttc_sim.Equiv.Equivalent -> true
  | _ -> false

let run_sequential ?(frames = 5) ?(max_iterations = 500)
    ?(max_conflicts_per_call = 200_000) ?(timeout_s = 60.) ?(candidates = [])
    ?(mode = Incremental) ?solver hybrid =
  let t0 = Unix.gettimeofday () in
  let foundry = Hybrid.foundry_view hybrid in
  let oracle = Oracle.create hybrid in
  let c1 = Encode.encode_unrolled ~frames foundry in
  let cnf = c1.Encode.u_cnf in
  let c2 =
    Encode.encode_unrolled ~cnf ~share_frame_pis:c1.Encode.frame_pis ~frames
      foundry
  in
  restrict_keys cnf c1.Encode.u_keys candidates;
  restrict_keys cnf c2.Encode.u_keys candidates;
  (* miter: some primary output differs in some frame, under [act] *)
  let diffs = ref [] in
  Array.iteri
    (fun frame pos1 ->
      List.iter2
        (fun (_, l1) (_, l2) ->
          let d = Cnf.fresh_var cnf in
          Cnf.encode_xor cnf d l1 l2;
          diffs := d :: !diffs)
        pos1
        c2.Encode.frame_pos.(frame))
    c1.Encode.frame_pos;
  let act = Cnf.fresh_var cnf in
  Cnf.add_clause cnf (-act :: !diffs);
  let solve, stats = make_solver ?reuse:solver mode cnf in
  (* pin an observed sequence into fresh unrolled copies of both keys *)
  let constrain_io pi_seq po_seq =
    let fresh1 =
      Encode.encode_unrolled ~cnf ~share_keys:c1.Encode.u_keys ~frames foundry
    in
    let fresh2 =
      Encode.encode_unrolled ~cnf ~share_keys:c2.Encode.u_keys
        ~share_frame_pis:fresh1.Encode.frame_pis ~frames foundry
    in
    List.iteri
      (fun frame pis ->
        List.iteri
          (fun i (_, l) -> Cnf.add_clause cnf [ (if pis.(i) then l else -l) ])
          fresh1.Encode.frame_pis.(frame);
        let pos = List.nth po_seq frame in
        List.iteri
          (fun i (_, l) -> Cnf.add_clause cnf [ (if pos.(i) then l else -l) ])
          fresh1.Encode.frame_pos.(frame);
        List.iteri
          (fun i (_, l) -> Cnf.add_clause cnf [ (if pos.(i) then l else -l) ])
          fresh2.Encode.frame_pos.(frame))
      pi_seq
  in
  let pi_count = List.length c1.Encode.frame_pis.(0) in
  let rec loop iteration =
    let elapsed = Unix.gettimeofday () -. t0 in
    if iteration > max_iterations then
      Exhausted
        {
          iterations = iteration - 1;
          seconds = elapsed;
          reason = "iteration limit";
          stats = stats ();
        }
    else if elapsed > timeout_s then
      Exhausted
        {
          iterations = iteration - 1;
          seconds = elapsed;
          reason = "timeout";
          stats = stats ();
        }
    else
      match
        Sttc_obs.Span.with_ "sat.dip_iteration" ~cat:"attack"
          ~attrs:[ ("iteration", string_of_int iteration) ]
          (fun () ->
            solve ~assumptions:[ act ] ~max_conflicts:max_conflicts_per_call ())
      with
      | Sat.Unknown _ ->
          Exhausted
            {
              iterations = iteration - 1;
              seconds = Unix.gettimeofday () -. t0;
              reason = "conflict budget";
              stats = stats ();
            }
      | Sat.Unsat -> (
          (* no distinguishing sequence of this length remains; extract
             the canonical consistent key and verify it *)
          match canonical_key solve c1.Encode.u_keys ~act with
          | Some model ->
              let fake_keyed =
                {
                  Encode.cnf;
                  inputs = [];
                  outputs = [];
                  keys = c1.Encode.u_keys;
                  node_lits = [||];
                }
              in
              let bitstream = Encode.key_of_model fake_keyed model in
              if verify_break hybrid bitstream then
                Broken
                  {
                    bitstream;
                    queries = Oracle.queries oracle;
                    iterations = iteration - 1;
                    seconds = Unix.gettimeofday () -. t0;
                    stats = stats ();
                  }
              else
                Exhausted
                  {
                    iterations = iteration - 1;
                    seconds = Unix.gettimeofday () -. t0;
                    reason = "sequence-length limit";
                    stats = stats ();
                  }
          | None ->
              Exhausted
                {
                  iterations = iteration - 1;
                  seconds = Unix.gettimeofday () -. t0;
                  reason = "no consistent key (internal error)";
                  stats = stats ();
                })
      | Sat.Sat model ->
          (* distinguishing sequence from the model *)
          let pi_seq =
            List.init frames (fun frame ->
                let bits = Array.make pi_count false in
                List.iteri
                  (fun i (_, l) -> bits.(i) <- Sat.model_value model l)
                  c1.Encode.frame_pis.(frame);
                bits)
          in
          let po_seq = Oracle.query_sequence oracle pi_seq in
          constrain_io pi_seq po_seq;
          loop (iteration + 1)
  in
  loop 1
