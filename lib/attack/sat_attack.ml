module Netlist = Sttc_netlist.Netlist
module Cnf = Sttc_logic.Cnf
module Sat = Sttc_logic.Sat
module Hybrid = Sttc_core.Hybrid

type outcome =
  | Broken of {
      bitstream : (Netlist.node_id * Sttc_logic.Truth.t) list;
      queries : int;
      iterations : int;
      seconds : float;
    }
  | Exhausted of {
      iterations : int;
      seconds : float;
      reason : string;
    }

(* One-hot candidate restriction: the keyed LUT must implement one of the
   listed truth tables. *)
let restrict_keys cnf keys candidates =
  List.iter
    (fun (id, key) ->
      match List.assoc_opt id candidates with
      | None -> ()
      | Some tables ->
          if tables = [] then invalid_arg "Sat_attack: empty candidate list";
          let selectors =
            List.map
              (fun table ->
                let s = Cnf.fresh_var cnf in
                Array.iteri
                  (fun r l ->
                    (* s -> key.(r) = table row r *)
                    Cnf.add_clause cnf
                      [ -s; (if Sttc_logic.Truth.row table r then l else -l) ])
                  key;
                s)
              tables
          in
          Cnf.add_clause cnf selectors)
    keys

let run ?(max_iterations = 2000) ?(max_conflicts_per_call = 200_000)
    ?(timeout_s = 60.) ?(candidates = []) hybrid =
  let t0 = Unix.gettimeofday () in
  let foundry = Hybrid.foundry_view hybrid in
  let oracle = Oracle.create hybrid in
  (* Copy 1 and copy 2 share inputs, have independent keys. *)
  let c1 = Encode.encode foundry in
  let c2 =
    Encode.encode ~cnf:c1.Encode.cnf ~share_inputs:c1.Encode.inputs foundry
  in
  let cnf = c1.Encode.cnf in
  restrict_keys cnf c1.Encode.keys candidates;
  restrict_keys cnf c2.Encode.keys candidates;
  (* Miter: some output differs. *)
  let diffs =
    List.map2
      (fun (_, l1) (_, l2) ->
        let d = Cnf.fresh_var cnf in
        Cnf.encode_xor cnf d l1 l2;
        d)
      c1.Encode.outputs c2.Encode.outputs
  in
  Cnf.add_clause cnf diffs;
  (* Constrain both key copies with an observed I/O pair.  The miter's
     inputs must stay free, so each observation gets fresh circuit copies
     sharing only the key variables. *)
  let constrain_io input_bits output_bits =
    let fresh1 =
      Encode.encode ~cnf ~share_keys:c1.Encode.keys foundry
    in
    let fresh2 =
      Encode.encode ~cnf ~share_inputs:fresh1.Encode.inputs
        ~share_keys:c2.Encode.keys foundry
    in
    List.iteri
      (fun i (_, l) ->
        Cnf.add_clause cnf [ (if input_bits.(i) then l else -l) ])
      fresh1.Encode.inputs;
    List.iteri
      (fun i (_, l) ->
        Cnf.add_clause cnf [ (if output_bits.(i) then l else -l) ])
      fresh1.Encode.outputs;
    List.iteri
      (fun i (_, l) ->
        Cnf.add_clause cnf [ (if output_bits.(i) then l else -l) ])
      fresh2.Encode.outputs
  in
  let input_count = List.length c1.Encode.inputs in
  let recorded = ref [] in
  let rec loop iteration =
    let elapsed = Unix.gettimeofday () -. t0 in
    if iteration > max_iterations then
      Exhausted { iterations = iteration - 1; seconds = elapsed; reason = "iteration limit" }
    else if elapsed > timeout_s then
      Exhausted { iterations = iteration - 1; seconds = elapsed; reason = "timeout" }
    else
      match Sat.solve ~max_conflicts:max_conflicts_per_call cnf with
      | None ->
          Exhausted
            {
              iterations = iteration - 1;
              seconds = Unix.gettimeofday () -. t0;
              reason = "conflict budget";
            }
      | Some Sat.Unsat ->
          (* No distinguishing input: find any key consistent with the
             recorded I/O pairs. *)
          let final_cnf = Cnf.create () in
          let final =
            Encode.encode ~cnf:final_cnf foundry
          in
          restrict_keys final_cnf final.Encode.keys candidates;
          (* replay recorded I/O constraints *)
          List.iter
            (fun (inp, out) ->
              let copy =
                Encode.encode ~cnf:final_cnf ~share_keys:final.Encode.keys
                  foundry
              in
              List.iteri
                (fun i (_, l) ->
                  Cnf.add_clause final_cnf [ (if inp.(i) then l else -l) ])
                copy.Encode.inputs;
              List.iteri
                (fun i (_, l) ->
                  Cnf.add_clause final_cnf [ (if out.(i) then l else -l) ])
                copy.Encode.outputs)
            !recorded;
          (match Sat.solve final_cnf with
          | Some (Sat.Sat model) ->
              Broken
                {
                  bitstream = Encode.key_of_model final model;
                  queries = Oracle.queries oracle;
                  iterations = iteration - 1;
                  seconds = Unix.gettimeofday () -. t0;
                }
          | Some Sat.Unsat | None ->
              Exhausted
                {
                  iterations = iteration - 1;
                  seconds = Unix.gettimeofday () -. t0;
                  reason = "no consistent key (internal error)";
                })
      | Some (Sat.Sat model) ->
          (* distinguishing input from the model *)
          let input_bits =
            Array.make input_count false
          in
          List.iteri
            (fun i (_, l) -> input_bits.(i) <- Sat.model_value model l)
            c1.Encode.inputs;
          let output_bits = Oracle.query oracle input_bits in
          recorded := (input_bits, output_bits) :: !recorded;
          constrain_io input_bits output_bits;
          loop (iteration + 1)
  in
  loop 1

let verify_break hybrid bitstream =
  let candidate = Hybrid.program_with hybrid bitstream in
  match
    Sttc_sim.Equiv.check_sat (Hybrid.programmed hybrid) candidate
  with
  | Sttc_sim.Equiv.Equivalent -> true
  | _ -> false

let run_sequential ?(frames = 5) ?(max_iterations = 500)
    ?(max_conflicts_per_call = 200_000) ?(timeout_s = 60.) hybrid =
  let t0 = Unix.gettimeofday () in
  let foundry = Hybrid.foundry_view hybrid in
  let oracle = Oracle.create hybrid in
  let c1 = Encode.encode_unrolled ~frames foundry in
  let cnf = c1.Encode.u_cnf in
  let c2 =
    Encode.encode_unrolled ~cnf ~share_frame_pis:c1.Encode.frame_pis ~frames
      foundry
  in
  (* miter: some primary output differs in some frame *)
  let diffs = ref [] in
  Array.iteri
    (fun frame pos1 ->
      List.iter2
        (fun (_, l1) (_, l2) ->
          let d = Cnf.fresh_var cnf in
          Cnf.encode_xor cnf d l1 l2;
          diffs := d :: !diffs)
        pos1
        c2.Encode.frame_pos.(frame))
    c1.Encode.frame_pos;
  Cnf.add_clause cnf !diffs;
  let recorded = ref [] in
  (* pin an observed sequence into fresh unrolled copies of both keys *)
  let constrain_io pi_seq po_seq =
    let fresh1 = Encode.encode_unrolled ~cnf ~share_keys:c1.Encode.u_keys ~frames foundry in
    let fresh2 =
      Encode.encode_unrolled ~cnf ~share_keys:c2.Encode.u_keys
        ~share_frame_pis:fresh1.Encode.frame_pis ~frames foundry
    in
    List.iteri
      (fun frame pis ->
        List.iteri
          (fun i (_, l) ->
            Cnf.add_clause cnf [ (if pis.(i) then l else -l) ])
          fresh1.Encode.frame_pis.(frame);
        let pos = List.nth po_seq frame in
        List.iteri
          (fun i (_, l) -> Cnf.add_clause cnf [ (if pos.(i) then l else -l) ])
          fresh1.Encode.frame_pos.(frame);
        List.iteri
          (fun i (_, l) -> Cnf.add_clause cnf [ (if pos.(i) then l else -l) ])
          fresh2.Encode.frame_pos.(frame))
      pi_seq
  in
  let pi_count = List.length c1.Encode.frame_pis.(0) in
  let rec loop iteration =
    let elapsed = Unix.gettimeofday () -. t0 in
    if iteration > max_iterations then
      Exhausted
        { iterations = iteration - 1; seconds = elapsed; reason = "iteration limit" }
    else if elapsed > timeout_s then
      Exhausted
        { iterations = iteration - 1; seconds = elapsed; reason = "timeout" }
    else
      match Sat.solve ~max_conflicts:max_conflicts_per_call cnf with
      | None ->
          Exhausted
            {
              iterations = iteration - 1;
              seconds = Unix.gettimeofday () -. t0;
              reason = "conflict budget";
            }
      | Some Sat.Unsat -> (
          (* no distinguishing sequence of this length remains; pick any
             consistent key and verify it *)
          let final_cnf = Cnf.create () in
          let final = Encode.encode_unrolled ~cnf:final_cnf ~frames foundry in
          List.iter
            (fun (pi_seq, po_seq) ->
              let copy =
                Encode.encode_unrolled ~cnf:final_cnf
                  ~share_keys:final.Encode.u_keys ~frames foundry
              in
              List.iteri
                (fun frame pis ->
                  List.iteri
                    (fun i (_, l) ->
                      Cnf.add_clause final_cnf
                        [ (if pis.(i) then l else -l) ])
                    copy.Encode.frame_pis.(frame);
                  let pos = List.nth po_seq frame in
                  List.iteri
                    (fun i (_, l) ->
                      Cnf.add_clause final_cnf
                        [ (if pos.(i) then l else -l) ])
                    copy.Encode.frame_pos.(frame))
                pi_seq)
            !recorded;
          match Sat.solve final_cnf with
          | Some (Sat.Sat model) ->
              let fake_keyed =
                {
                  Encode.cnf = final_cnf;
                  inputs = [];
                  outputs = [];
                  keys = final.Encode.u_keys;
                  node_lits = [||];
                }
              in
              let bitstream = Encode.key_of_model fake_keyed model in
              if verify_break hybrid bitstream then
                Broken
                  {
                    bitstream;
                    queries = Oracle.queries oracle;
                    iterations = iteration - 1;
                    seconds = Unix.gettimeofday () -. t0;
                  }
              else
                Exhausted
                  {
                    iterations = iteration - 1;
                    seconds = Unix.gettimeofday () -. t0;
                    reason = "sequence-length limit";
                  }
          | Some Sat.Unsat | None ->
              Exhausted
                {
                  iterations = iteration - 1;
                  seconds = Unix.gettimeofday () -. t0;
                  reason = "no consistent key (internal error)";
                })
      | Some (Sat.Sat model) ->
          (* distinguishing sequence from the model *)
          let pi_seq =
            List.init frames (fun frame ->
                let bits = Array.make pi_count false in
                List.iteri
                  (fun i (_, l) -> bits.(i) <- Sat.model_value model l)
                  c1.Encode.frame_pis.(frame);
                bits)
          in
          let po_seq = Oracle.query_sequence oracle pi_seq in
          recorded := (pi_seq, po_seq) :: !recorded;
          constrain_io pi_seq po_seq;
          loop (iteration + 1)
  in
  loop 1
