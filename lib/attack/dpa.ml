module Netlist = Sttc_netlist.Netlist
module Simulator = Sttc_sim.Simulator
module Library = Sttc_tech.Library
module Cell = Sttc_tech.Cell
module Rng = Sttc_util.Rng

type result = {
  traces : int;
  cycles : int;
  mean_energy_fj : float;
  dom_fj : float;
  dom_relative : float;
}

let measure ?(cycles = 32) ?(batches = 16) ?(seed = 0xd9a) lib nl ~target =
  if cycles < 1 || batches < 1 then invalid_arg "Dpa.measure: sizes";
  let target_id =
    match Netlist.find nl target with
    | Some id -> id
    | None -> invalid_arg ("Dpa.measure: unknown target signal " ^ target)
  in
  let sim = Simulator.create nl in
  let rng = Rng.make seed in
  let pis = Array.of_list (Netlist.pis nl) in
  let n = Netlist.node_count nl in
  (* per-node energy coefficients *)
  let toggle_energy = Array.make n 0. in
  let static_energy = Array.make n 0. in
  Netlist.iter
    (fun id node ->
      match Library.cell_of_kind lib node.Netlist.kind with
      | None -> ()
      | Some cell ->
          if Cell.activity_independent cell then
            static_energy.(id) <- cell.Cell.switch_energy_fj
          else toggle_energy.(id) <- cell.Cell.switch_energy_fj)
    nl;
  let static_per_cycle = Array.fold_left ( +. ) 0. static_energy in
  (* accumulators per cycle: sums and counts for target=0 / target=1 *)
  let sum0 = Array.make cycles 0. and cnt0 = Array.make cycles 0 in
  let sum1 = Array.make cycles 0. and cnt1 = Array.make cycles 0 in
  let total = ref 0. and total_n = ref 0 in
  for _batch = 1 to batches do
    Simulator.reset sim;
    let prev = Array.make n 0L in
    for cycle = 0 to cycles - 1 do
      let pi_lanes = Array.map (fun _ -> Rng.int64 rng) pis in
      ignore (Simulator.step sim pi_lanes);
      let values = Simulator.node_values sim in
      (* per-lane energy of this cycle *)
      let lane_energy = Array.make 64 static_per_cycle in
      for id = 0 to n - 1 do
        let e = toggle_energy.(id) in
        if e > 0. then begin
          let diff = Int64.logxor values.(id) prev.(id) in
          if diff <> 0L then
            for lane = 0 to 63 do
              if Int64.logand (Int64.shift_right_logical diff lane) 1L = 1L
              then lane_energy.(lane) <- lane_energy.(lane) +. e
            done
        end
      done;
      Array.blit values 0 prev 0 n;
      let target_lanes = values.(target_id) in
      for lane = 0 to 63 do
        let e = lane_energy.(lane) in
        total := !total +. e;
        incr total_n;
        if Int64.logand (Int64.shift_right_logical target_lanes lane) 1L = 1L
        then begin
          sum1.(cycle) <- sum1.(cycle) +. e;
          cnt1.(cycle) <- cnt1.(cycle) + 1
        end
        else begin
          sum0.(cycle) <- sum0.(cycle) +. e;
          cnt0.(cycle) <- cnt0.(cycle) + 1
        end
      done
    done
  done;
  let dom = ref 0. in
  for cycle = 0 to cycles - 1 do
    if cnt0.(cycle) > 0 && cnt1.(cycle) > 0 then begin
      let m0 = sum0.(cycle) /. float_of_int cnt0.(cycle) in
      let m1 = sum1.(cycle) /. float_of_int cnt1.(cycle) in
      dom := Float.max !dom (Float.abs (m1 -. m0))
    end
  done;
  let mean = if !total_n = 0 then 0. else !total /. float_of_int !total_n in
  {
    traces = 64 * batches;
    cycles;
    mean_energy_fj = mean;
    dom_fj = !dom;
    dom_relative = (if mean = 0. then 0. else !dom /. mean);
  }

let leakage_reduction ?cycles ?batches ?seed lib ~original ~hybrid ~target =
  let r_orig = measure ?cycles ?batches ?seed lib original ~target in
  let r_hyb = measure ?cycles ?batches ?seed lib hybrid ~target in
  if r_hyb.dom_relative = 0. then infinity
  else r_orig.dom_relative /. r_hyb.dom_relative
