module Netlist = Sttc_netlist.Netlist
module Truth = Sttc_logic.Truth
module Gate_fn = Sttc_logic.Gate_fn
module Rng = Sttc_util.Rng
module Hybrid = Sttc_core.Hybrid

type result = {
  recovered : bool;
  agreement : float;
  rounds_used : int;
  oracle_queries : int;
  seconds : float;
  bitstream : (Netlist.node_id * Truth.t) list;
}

let popcount64 x =
  let rec loop acc x =
    if Int64.equal x 0L then acc
    else loop (acc + 1) (Int64.logand x (Int64.sub x 1L))
  in
  loop 0 x

let run ?(rounds = 12) ?(probes = 1024) ?(seed = 0x9e55) hybrid =
  let t0 = Unix.gettimeofday () in
  let foundry = Hybrid.foundry_view hybrid in
  let oracle = Oracle.create hybrid in
  let rng = Rng.make seed in
  let luts = Hybrid.lut_ids hybrid in
  let pis = Array.of_list (Netlist.pis foundry) in
  let dffs = Array.of_list (Netlist.dffs foundry) in
  (* Probe set: random input lanes and the oracle's responses. *)
  let batches = max 1 (probes / 64) in
  let probe_inputs =
    Array.init batches (fun _ ->
        Array.init
          (Array.length pis + Array.length dffs)
          (fun _ -> Rng.int64 rng))
  in
  let probe_outputs = Array.map (fun b -> Oracle.query_lanes oracle b) probe_inputs in
  let arity_of id =
    match Netlist.kind foundry id with
    | Netlist.Lut { arity; _ } -> arity
    | _ -> assert false
  in
  let candidates id =
    let a = arity_of id in
    let meaningful =
      if a = 1 then [ Gate_fn.Buf; Gate_fn.Not ] else Gate_fn.all_of_arity a
    in
    List.map Gate_fn.truth meaningful
    @ List.init 4 (fun _ -> Truth.random rng ~arity:a)
  in
  (* current hypothesis *)
  let hypo = Hashtbl.create 16 in
  List.iter
    (fun id -> Hashtbl.replace hypo id (List.hd (candidates id)))
    luts;
  let bitstream_of_hypo () =
    List.map (fun id -> (id, Hashtbl.find hypo id)) luts
  in
  let score bitstream =
    (* lanes of agreement across the probe set *)
    let candidate = Hybrid.program_with hybrid bitstream in
    let sim = Sttc_sim.Simulator.create candidate in
    let agree = ref 0 and total = ref 0 in
    Array.iteri
      (fun b inputs ->
        let pi_lanes = Array.sub inputs 0 (Array.length pis) in
        let st_lanes = Array.sub inputs (Array.length pis) (Array.length dffs) in
        Sttc_sim.Simulator.set_state sim st_lanes;
        let pos = Sttc_sim.Simulator.eval_comb sim pi_lanes in
        let values = Sttc_sim.Simulator.node_values sim in
        let next =
          Array.of_list
            (List.map
               (fun ff -> values.((Netlist.fanins candidate ff).(0)))
               (Netlist.dffs candidate))
        in
        let ours = Array.append pos next in
        Array.iteri
          (fun i v ->
            let diff = Int64.logxor v probe_outputs.(b).(i) in
            agree := !agree + (64 - popcount64 diff);
            total := !total + 64)
          ours)
      probe_inputs;
    if !total = 0 then 0. else float_of_int !agree /. float_of_int !total
  in
  let best_round = ref (score (bitstream_of_hypo ())) in
  let rounds_used = ref 0 in
  (try
     for _round = 1 to rounds do
       incr rounds_used;
       let improved = ref false in
       List.iter
         (fun id ->
           let current = Hashtbl.find hypo id in
           let best = ref current and best_score = ref !best_round in
           List.iter
             (fun cand ->
               if not (Truth.equal cand !best) then begin
                 Hashtbl.replace hypo id cand;
                 let s = score (bitstream_of_hypo ()) in
                 if s > !best_score then begin
                   best := cand;
                   best_score := s
                 end
               end)
             (candidates id);
           Hashtbl.replace hypo id !best;
           if !best_score > !best_round then begin
             best_round := !best_score;
             improved := true
           end
         )
         luts;
       if (not !improved) || !best_round >= 1.0 then raise Exit
     done
   with Exit -> ());
  let bitstream = bitstream_of_hypo () in
  let recovered =
    !best_round >= 1.0 && Sat_attack.verify_break hybrid bitstream
  in
  {
    recovered;
    agreement = !best_round;
    rounds_used = !rounds_used;
    oracle_queries = Oracle.queries oracle;
    seconds = Unix.gettimeofday () -. t0;
    bitstream;
  }
