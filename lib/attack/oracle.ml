module Netlist = Sttc_netlist.Netlist
module Simulator = Sttc_sim.Simulator

type t = {
  nl : Netlist.t;
  sim : Simulator.t;
  n_pis : int;
  n_dffs : int;
  mutable count : int;
}

let of_netlist nl =
  let sim = Simulator.create nl in
  {
    nl;
    sim;
    n_pis = List.length (Netlist.pis nl);
    n_dffs = List.length (Netlist.dffs nl);
    count = 0;
  }

let create hybrid = of_netlist (Sttc_core.Hybrid.programmed hybrid)

let input_names t =
  List.map (Netlist.name t.nl) (Netlist.pis t.nl)
  @ List.map (Netlist.name t.nl) (Netlist.dffs t.nl)

let output_names t =
  Array.to_list (Array.map fst (Netlist.outputs t.nl))
  @ List.map (Netlist.name t.nl) (Netlist.dffs t.nl)

let query_lanes t inputs =
  if Array.length inputs <> t.n_pis + t.n_dffs then
    invalid_arg "Oracle.query_lanes: input arity";
  t.count <- t.count + 64;
  let pis = Array.sub inputs 0 t.n_pis in
  let state = Array.sub inputs t.n_pis t.n_dffs in
  Simulator.set_state t.sim state;
  let pos = Simulator.eval_comb t.sim pis in
  (* next-state = D-input values *)
  let values = Simulator.node_values t.sim in
  let next =
    Array.of_list
      (List.map
         (fun ff -> values.((Netlist.fanins t.nl ff).(0)))
         (Netlist.dffs t.nl))
  in
  Array.append pos next

let query t inputs =
  let lanes =
    Array.map (fun b -> if b then -1L else 0L) inputs
  in
  let out = query_lanes t lanes in
  t.count <- t.count - 63; (* single pattern *)
  Array.map (fun v -> Int64.logand v 1L = 1L) out

let queries t = t.count

let query_sequence t pi_vectors =
  List.iter
    (fun v ->
      if Array.length v <> t.n_pis then
        invalid_arg "Oracle.query_sequence: PI arity")
    pi_vectors;
  Simulator.reset t.sim;
  List.map
    (fun v ->
      t.count <- t.count + 1;
      let lanes = Array.map (fun b -> if b then -1L else 0L) v in
      let outs = Simulator.step t.sim lanes in
      Array.map (fun o -> Int64.logand o 1L = 1L) outs)
    pi_vectors
