(** Exhaustive configuration search and its cost model — the attack whose
    cost Eq. (3) bounds.

    Feasible only for a handful of configuration bits; beyond that the
    module reports the search-space size and the projected wall-clock at a
    measured or assumed candidate-testing rate, reproducing the paper's
    "more than 1000 years at one billion patterns per second" style of
    argument. *)

type outcome =
  | Broken of {
      bitstream : (Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t) list;
      candidates_tested : Sttc_util.Lognum.t;
      seconds : float;
    }
  | Infeasible of {
      search_space : Sttc_util.Lognum.t;  (** 2^(config bits) *)
      projected_years : Sttc_util.Lognum.t;
      tested_rate_per_s : float;
          (** measured on a prefix of the space before giving up *)
    }

val run :
  ?max_bits:int ->
  ?check_vectors:int ->
  ?seed:int ->
  Sttc_core.Hybrid.t ->
  outcome
(** [max_bits] (default 18) caps the exhaustively searchable configuration
    size; larger hybrids return {!Infeasible} with a measured projection.
    A candidate survives when [check_vectors] (default 512) random
    combinational-view queries match the oracle; the first survivor is
    confirmed by SAT equivalence (and search continues past false
    positives). *)

val search_space : Sttc_core.Hybrid.t -> Sttc_util.Lognum.t
(** 2^(total config bits). *)
