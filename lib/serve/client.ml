type t = { fd : Unix.file_descr; rbuf : Buffer.t }

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd; rbuf = Buffer.create 4096 }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s: %s" socket (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      let w = Unix.write fd bytes off (n - off) in
      go (off + w)
  in
  go 0

let send_raw t line =
  match write_all t.fd (line ^ "\n") with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send: " ^ Unix.error_message e)

(* the frame accumulator mirrors the server's: read until the buffer
   holds a newline, return the frame before it *)
let recv_line t =
  let take_line () =
    let text = Buffer.contents t.rbuf in
    match String.index_opt text '\n' with
    | None -> None
    | Some i ->
        Buffer.clear t.rbuf;
        Buffer.add_substring t.rbuf text (i + 1) (String.length text - i - 1);
        Some (String.sub text 0 i)
  in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match take_line () with
    | Some line -> Ok line
    | None -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error "connection closed by server"
        | n ->
            Buffer.add_subbytes t.rbuf chunk 0 n;
            go ()
        | exception Unix.Unix_error (e, _, _) ->
            Error ("recv: " ^ Unix.error_message e))
  in
  go ()

let request t req =
  match send_raw t (Request.to_string req) with
  | Error _ as e -> e
  | Ok () -> (
      match recv_line t with
      | Error _ as e -> e
      | Ok line -> Response.of_string line)

let with_connection socket f =
  match connect socket with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
