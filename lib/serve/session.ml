module Metrics = Sttc_obs.Metrics
module Netlist = Sttc_netlist.Netlist
module Sta = Sttc_analysis.Sta

type entry = {
  netlist : Netlist.t;
  mutable stamp : int;
  mutable sta : Sta.t option;
}

type t = {
  capacity : int;
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;
}

let create ?(capacity = 32) () =
  { capacity; lock = Mutex.create (); table = Hashtbl.create 64; tick = 0 }

let capacity t = t.capacity

let key = function
  | Request.Named n -> "name:" ^ n
  | Request.Inline { name; text } ->
      "sha:" ^ name ^ ":" ^ Digest.to_hex (Digest.string text)

let parse = function
  | Request.Named n -> (
      try Ok (Sttc_experiments.Runner.build_circuit n)
      with Invalid_argument m -> Error m)
  | Request.Inline { name; text } -> (
      try Ok (Sttc_netlist.Bench_io.parse_string ~design_name:name text) with
      | Sttc_netlist.Bench_io.Parse_error (line, msg) ->
          Error (Printf.sprintf "%s:%d: %s" name line msg)
      | Invalid_argument m -> Error m)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let evict_over_capacity t =
  while Hashtbl.length t.table > t.capacity do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (k, e.stamp))
        t.table None
    in
    match victim with
    | Some (k, _) ->
        Hashtbl.remove t.table k;
        Metrics.incr "serve.cache_evictions"
    | None -> ()
  done

let netlist t source =
  if t.capacity <= 0 then begin
    Metrics.incr "serve.cache_misses";
    parse source
  end
  else
    let k = key source in
    let cached =
      locked t (fun () ->
          match Hashtbl.find_opt t.table k with
          | Some e ->
              touch t e;
              Some e.netlist
          | None -> None)
    in
    match cached with
    | Some nl ->
        Metrics.incr "serve.cache_hits";
        Ok nl
    | None -> (
        Metrics.incr "serve.cache_misses";
        (* parse and warm outside the lock: concurrent misses on the
           same key may both parse (identical results — parsing is
           deterministic); the loser's insert is a harmless overwrite *)
        match parse source with
        | Error _ as e -> e
        | Ok nl ->
            Netlist.warm nl;
            locked t (fun () ->
                (match Hashtbl.find_opt t.table k with
                | Some e -> touch t e
                | None ->
                    t.tick <- t.tick + 1;
                    Hashtbl.replace t.table k
                      { netlist = nl; stamp = t.tick; sta = None };
                    evict_over_capacity t);
                Ok nl))

let sta t source nl =
  let compute () = Sta.analyze Sttc_tech.Library.cmos90 nl in
  if t.capacity <= 0 then begin
    Metrics.incr "serve.sta_cache_misses";
    compute ()
  end
  else
    let k = key source in
    let cached =
      locked t (fun () ->
          match Hashtbl.find_opt t.table k with
          | Some e when e.netlist == nl -> e.sta
          | Some _ | None -> None)
    in
    match cached with
    | Some s ->
        Metrics.incr "serve.sta_cache_hits";
        s
    | None ->
        Metrics.incr "serve.sta_cache_misses";
        (* analyze outside the lock; concurrent misses both compute the
           same deterministic result and one insert wins harmlessly *)
        let s = compute () in
        locked t (fun () ->
            (match Hashtbl.find_opt t.table k with
            | Some e when e.netlist == nl -> (
                match e.sta with None -> e.sta <- Some s | Some _ -> ())
            | Some _ | None -> ());
            s)
