(** The daemon's session registry: a warm, LRU-bounded cache of parsed
    netlists shared read-only by every worker.

    This is the point of a persistent server — re-requesting the same
    circuit skips the parse {e and} the lazy topology computation:
    every netlist is {!Sttc_netlist.Netlist.warm}ed before it enters
    the cache (PR 3's read-only sharing discipline), so worker domains
    can use a cached netlist concurrently without racing its lazy
    caches.

    Keys are content-addressed — the benchmark name for {!Request.Named}
    sources, a digest of the .bench text (plus design name) for
    {!Request.Inline} ones — so two clients shipping the same netlist
    text share one entry.

    Each entry also memoizes the base timing analysis of its netlist
    (computed on first use by a protect request), so repeated requests on
    a warm entry skip the base [Sta.analyze] entirely.

    Metrics: [serve.cache_hits], [serve.cache_misses],
    [serve.cache_evictions], [serve.sta_cache_hits],
    [serve.sta_cache_misses]. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty registry holding at most [capacity] netlists (default 32;
    least-recently-used entries are evicted past that).  [capacity <= 0]
    disables caching entirely — every request parses from scratch, the
    cold baseline the serve benchmark compares against. *)

val capacity : t -> int

val key : Request.source -> string
(** The cache key of a source (exposed for tests). *)

val netlist : t -> Request.source -> (Sttc_netlist.Netlist.t, string) result
(** Resolve a source to a parsed, warmed netlist — from cache when
    possible.  Thread-safe; parsing happens outside the registry lock,
    so a slow parse never blocks cache hits.  Errors are unknown
    benchmark names or .bench parse failures. *)

val sta : t -> Request.source -> Sttc_netlist.Netlist.t -> Sttc_analysis.Sta.t
(** The base timing analysis (default {!Sttc_tech.Library.cmos90}) of a
    netlist previously resolved with {!netlist}, memoized on its cache
    entry.  The memo is used only when the entry still holds this exact
    netlist value, so a stale or evicted entry can never serve a wrong
    analysis — it just recomputes.  Thread-safe; the analysis runs
    outside the lock.  Counters: [serve.sta_cache_hits] /
    [serve.sta_cache_misses]. *)
