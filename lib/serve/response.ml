module Json = Sttc_obs.Json
module Metrics = Sttc_obs.Metrics
module Harness = Sttc_attack.Harness

type protect = {
  report : string;
  foundry_bench : string option;
  bitstream : string option;
  programming_cost : string option;
  verilog : string option;
  sign_off : bool option;
}

type lint = { rendered : string; exit_code : int }

type payload =
  | Protect of protect
  | Attack of { campaign : Harness.campaign; rendered : string }
  | Lint of lint
  | Stats of Metrics.snapshot
  | Pong
  | Shutting_down

type t =
  | Ok of { id : string option; payload : payload }
  | Error of { id : string option; message : string }
  | Overloaded of { id : string option }

(* ---------- campaign codec ---------- *)

let verdict_to_json = function
  | Harness.Recovered -> Json.String "recovered"
  | Harness.Resisted -> Json.String "resisted"
  | Harness.Partial f -> Json.Obj [ ("partial", Json.Float f) ]

let mem name j = Option.value (Json.member name j) ~default:Json.Null
let ( let* ) = Result.bind

let verdict_of_json = function
  | Json.String "recovered" -> Stdlib.Ok Harness.Recovered
  | Json.String "resisted" -> Stdlib.Ok Harness.Resisted
  | Json.Obj _ as j -> (
      match Json.to_float_opt (mem "partial" j) with
      | Some f -> Stdlib.Ok (Harness.Partial f)
      | None -> Stdlib.Error "verdict object needs \"partial\"")
  | _ -> Stdlib.Error "bad verdict"

let entry_to_json (e : Harness.entry) =
  Json.Obj
    ([
       ("attack", Json.String e.attack);
       ("verdict", verdict_to_json e.verdict);
       ("seconds", Json.Float e.seconds);
       ("oracle_queries", Json.Int e.oracle_queries);
       ("detail", Json.String e.detail);
     ]
    @
    match e.sat_stats with
    | Some snap -> [ ("sat_stats", Metrics.to_json snap) ]
    | None -> [])

let entry_of_json j =
  let* attack =
    Option.to_result ~none:"entry: missing \"attack\""
      (Json.to_string_opt (mem "attack" j))
  in
  let* verdict = verdict_of_json (mem "verdict" j) in
  let* seconds =
    Option.to_result ~none:"entry: missing \"seconds\""
      (Json.to_float_opt (mem "seconds" j))
  in
  let* oracle_queries =
    Option.to_result ~none:"entry: missing \"oracle_queries\""
      (Json.to_int_opt (mem "oracle_queries" j))
  in
  let* detail =
    Option.to_result ~none:"entry: missing \"detail\""
      (Json.to_string_opt (mem "detail" j))
  in
  let* sat_stats =
    match mem "sat_stats" j with
    | Json.Null -> Stdlib.Ok None
    | s ->
        let* snap = Metrics.of_json s in
        Stdlib.Ok (Some snap)
  in
  Stdlib.Ok
    { Harness.attack; verdict; seconds; oracle_queries; detail; sat_stats }

let campaign_to_json (c : Harness.campaign) =
  Json.Obj
    [
      ("circuit", Json.String c.circuit);
      ("algorithm", Json.String c.algorithm);
      ("lut_count", Json.Int c.lut_count);
      ("entries", Json.List (List.map entry_to_json c.entries));
    ]

let campaign_of_json j =
  let* circuit =
    Option.to_result ~none:"campaign: missing \"circuit\""
      (Json.to_string_opt (mem "circuit" j))
  in
  let* algorithm =
    Option.to_result ~none:"campaign: missing \"algorithm\""
      (Json.to_string_opt (mem "algorithm" j))
  in
  let* lut_count =
    Option.to_result ~none:"campaign: missing \"lut_count\""
      (Json.to_int_opt (mem "lut_count" j))
  in
  let* entries =
    match mem "entries" j with
    | Json.List items ->
        let rec go acc = function
          | [] -> Stdlib.Ok (List.rev acc)
          | e :: rest -> (
              match entry_of_json e with
              | Stdlib.Ok e -> go (e :: acc) rest
              | Stdlib.Error _ as err -> err)
        in
        go [] items
    | _ -> Stdlib.Error "campaign: missing \"entries\""
  in
  Stdlib.Ok { Harness.circuit; algorithm; lut_count; entries }

(* ---------- response codec ---------- *)

let opt name f = function Some v -> [ (name, f v) ] | None -> []

let payload_verb = function
  | Protect _ -> "protect"
  | Attack _ -> "attack"
  | Lint _ -> "lint"
  | Stats _ -> "stats"
  | Pong -> "ping"
  | Shutting_down -> "shutdown"

let to_json t =
  match t with
  | Ok { id; payload } ->
      let fields =
        match payload with
        | Protect p ->
            [ ("report", Json.String p.report) ]
            @ opt "foundry_bench" (fun s -> Json.String s) p.foundry_bench
            @ opt "bitstream" (fun s -> Json.String s) p.bitstream
            @ opt "programming_cost" (fun s -> Json.String s) p.programming_cost
            @ opt "verilog" (fun s -> Json.String s) p.verilog
            @ opt "sign_off" (fun b -> Json.Bool b) p.sign_off
        | Attack { campaign; rendered } ->
            [
              ("campaign", campaign_to_json campaign);
              ("rendered", Json.String rendered);
            ]
        | Lint l ->
            [
              ("rendered", Json.String l.rendered);
              ("exit_code", Json.Int l.exit_code);
            ]
        | Stats snap -> [ ("metrics", Metrics.to_json snap) ]
        | Pong | Shutting_down -> []
      in
      Json.Obj
        (opt "id" (fun s -> Json.String s) id
        @ [
            ("status", Json.String "ok");
            ("verb", Json.String (payload_verb payload));
          ]
        @ fields)
  | Error { id; message } ->
      Json.Obj
        (opt "id" (fun s -> Json.String s) id
        @ [ ("status", Json.String "error"); ("message", Json.String message) ])
  | Overloaded { id } ->
      Json.Obj
        (opt "id" (fun s -> Json.String s) id
        @ [ ("status", Json.String "overloaded") ])

let to_string t = Json.to_string ~minify:true (to_json t)

let string_field j name =
  Option.to_result
    ~none:(Printf.sprintf "response: missing %S" name)
    (Json.to_string_opt (mem name j))

let opt_string j name = Json.to_string_opt (mem name j)

let of_json j =
  match j with
  | Json.Obj _ -> (
      let id = Json.to_string_opt (mem "id" j) in
      match Json.to_string_opt (mem "status" j) with
      | Some "overloaded" -> Stdlib.Ok (Overloaded { id })
      | Some "error" ->
          let* message = string_field j "message" in
          Stdlib.Ok (Error { id; message })
      | Some "ok" ->
          let* payload =
            match Json.to_string_opt (mem "verb" j) with
            | Some "protect" ->
                let* report = string_field j "report" in
                let sign_off =
                  match mem "sign_off" j with
                  | Json.Bool b -> Some b
                  | _ -> None
                in
                Stdlib.Ok
                  (Protect
                     {
                       report;
                       foundry_bench = opt_string j "foundry_bench";
                       bitstream = opt_string j "bitstream";
                       programming_cost = opt_string j "programming_cost";
                       verilog = opt_string j "verilog";
                       sign_off;
                     })
            | Some "attack" ->
                let* campaign = campaign_of_json (mem "campaign" j) in
                let* rendered = string_field j "rendered" in
                Stdlib.Ok (Attack { campaign; rendered })
            | Some "lint" ->
                let* rendered = string_field j "rendered" in
                let* exit_code =
                  Option.to_result ~none:"response: missing \"exit_code\""
                    (Json.to_int_opt (mem "exit_code" j))
                in
                Stdlib.Ok (Lint { rendered; exit_code })
            | Some "stats" ->
                let* snap = Metrics.of_json (mem "metrics" j) in
                Stdlib.Ok (Stats snap)
            | Some "ping" -> Stdlib.Ok Pong
            | Some "shutdown" -> Stdlib.Ok Shutting_down
            | Some v -> Stdlib.Error ("response: unknown verb " ^ v)
            | None -> Stdlib.Error "response: missing \"verb\""
          in
          Stdlib.Ok (Ok { id; payload })
      | Some s -> Stdlib.Error ("response: unknown status " ^ s)
      | None -> Stdlib.Error "response: missing \"status\"")
  | _ -> Stdlib.Error "response must be a JSON object"

let of_string s =
  match Json.of_string s with
  | Stdlib.Error e -> Stdlib.Error e
  | Stdlib.Ok j -> of_json j
