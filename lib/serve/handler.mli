(** The one request handler behind both transports.

    [sttc protect]/[attack]/[lint] subcommands call {!handle} directly
    (offline transport); the [sttc serve] daemon calls the very same
    function from its worker domains (socket transport).  Any behavioral
    difference between the two would be a bug — the CI serve gate diffs
    their responses byte for byte.

    Budgets: a request's [timeout_s] is enforced with
    {!Sttc_util.Timing.with_timeout} on the main domain and
    cooperatively (overrun classified on return) on worker domains —
    identical [Error] text either way.  The [attack] verb is always
    budgeted cooperatively, because the harness arms the process timer
    internally for its per-attack budgets and the timer does not nest.

    Metrics: [serve.requests], [serve.errors] and the
    [serve.request_seconds] histogram. *)

val handle :
  ?solver:Sttc_logic.Sat.Solver.t ->
  Session.t ->
  Request.t ->
  Response.t
(** Execute one request.  [solver] is the calling worker's persistent
    SAT arena, recycled across requests via
    {!Sttc_logic.Sat.Solver.reset} (results are byte-identical with or
    without it); pass it only from a context that owns the solver
    exclusively for the duration of the call. *)

val lint_diagnostics :
  algorithms:Sttc_core.Flow.algorithm list ->
  semantic:bool ->
  seed:int ->
  ?fraction:float ->
  ?budget:int ->
  rules:string list ->
  suppress:string list ->
  Sttc_netlist.Netlist.t ->
  (Sttc_lint.Diagnostic.t list, string) result
(** The lint pipeline shared with the CLI's baseline modes: structural
    pack, optional semantic pack, per-algorithm hybrid security/semantic
    packs, then {!Sttc_lint.Lint.apply} with [rules]/[suppress].
    Rejects unknown rule names up front so a typo cannot silently
    disable the gate. *)
