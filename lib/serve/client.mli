(** A minimal blocking client for the {!Server} protocol — the engine
    behind [sttc client], the serve benchmark's load generator and the
    integration tests.

    One connection, strict request/response alternation: {!request}
    sends a frame and blocks for the next response line.  For pipelined
    or concurrent traffic open one connection per in-flight request. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's Unix-domain socket at the given path. *)

val close : t -> unit

val request : t -> Request.t -> (Response.t, string) result
(** One round trip.  The [Error] case is a transport or framing
    failure; application failures arrive as {!Response.Error} /
    {!Response.Overloaded} values. *)

val send_raw : t -> string -> (unit, string) result
(** Ship one raw frame (newline appended) — for malformed-frame tests. *)

val recv_line : t -> (string, string) result
(** Block for the next response frame, undecoded. *)

val with_connection : string -> (t -> ('a, string) result) -> ('a, string) result
(** [connect], run, always [close]. *)
