(** The typed response surface matching {!Request}.

    Every response is one JSON object per line.  [Ok] carries the
    verb-specific payload, [Error] a message, and [Overloaded] is the
    typed backpressure reply the daemon sends instead of queueing
    unboundedly — clients must treat it as "retry later", never as a
    protocol failure. *)

type protect = {
  report : string;
      (** the {!Sttc_core.Flow.pp_result} rendering, exactly what the
          offline CLI prints (trailing newline included) *)
  foundry_bench : string option;  (** when [emit_foundry] was set *)
  bitstream : string option;
  programming_cost : string option;
      (** the {!Sttc_core.Provision.pp_cost} rendering, shipped with the
          bitstream *)
  verilog : string option;
  sign_off : bool option;  (** when [sign_off] was requested *)
}

type lint = {
  rendered : string;  (** text or JSON, per the request's [format] *)
  exit_code : int;  (** {!Sttc_lint.Lint.exit_code} of the diagnostics *)
}

type payload =
  | Protect of protect
  | Attack of {
      campaign : Sttc_attack.Harness.campaign;
      rendered : string;  (** the {!Sttc_attack.Harness.pp_campaign} text *)
    }
  | Lint of lint
  | Stats of Sttc_obs.Metrics.snapshot
  | Pong
  | Shutting_down

type t =
  | Ok of { id : string option; payload : payload }
  | Error of { id : string option; message : string }
  | Overloaded of { id : string option }

val campaign_to_json : Sttc_attack.Harness.campaign -> Sttc_obs.Json.t
val campaign_of_json :
  Sttc_obs.Json.t -> (Sttc_attack.Harness.campaign, string) result
(** The attack-campaign wire codec ([sat_stats] rides as a
    {!Sttc_obs.Metrics} snapshot object) — exposed for report tooling. *)

val to_json : t -> Sttc_obs.Json.t
val of_json : Sttc_obs.Json.t -> (t, string) result

val to_string : t -> string
(** Minified single-line JSON, sans trailing newline — both transports
    render responses through this one function, which is what makes the
    CI byte-for-byte diff possible. *)

val of_string : string -> (t, string) result
