module Metrics = Sttc_obs.Metrics

module Config = struct
  type t = {
    socket : string;
    jobs : int;
    queue_capacity : int;
    cache_capacity : int;
    default_timeout_s : float option;
    on_event : string -> unit;
  }

  let default =
    {
      socket = "sttc.sock";
      jobs = 2;
      queue_capacity = 64;
      cache_capacity = 32;
      default_timeout_s = None;
      on_event = ignore;
    }

  let with_socket socket t = { t with socket }
  let with_jobs jobs t = { t with jobs }
  let with_queue_capacity queue_capacity t = { t with queue_capacity }
  let with_cache_capacity cache_capacity t = { t with cache_capacity }
  let with_default_timeout_s s t = { t with default_timeout_s = Some s }
  let with_on_event on_event t = { t with on_event }
end

(* every counter the daemon can bump, seeded up front so the series
   exist (and obs-check --require passes) even for an uneventful run *)
let counters =
  [
    "serve.requests";
    "serve.errors";
    "serve.overloaded";
    "serve.cache_hits";
    "serve.cache_misses";
    "serve.cache_evictions";
  ]

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (** partial frame accumulator (main thread only) *)
  wlock : Mutex.t;  (** serializes response writes from worker domains *)
  mutable alive : bool;
}

type job = { conn : conn; request : Request.t }

type t = {
  cfg : Config.t;
  session : Session.t;
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;
  wake_w : Unix.file_descr;  (** self-pipe: workers wake the select loop *)
}

let write_all fd s =
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      let w = Unix.write fd bytes off (n - off) in
      go (off + w)
  in
  go 0

(* a dead peer (EPIPE/ECONNRESET) just marks the connection; the select
   loop reaps it on its next read *)
let send conn response =
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () ->
      if conn.alive then
        try write_all conn.fd (Response.to_string response ^ "\n")
        with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        -> conn.alive <- false)

let signal_stop t =
  Mutex.lock t.qlock;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.qcond;
    (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.qlock

(* ---------- worker domains ---------- *)

(* Each worker owns one persistent SAT solver arena for its whole
   lifetime, recycled across requests by the attack engine — the
   warm-solver half of the daemon's persistence story. *)
let worker t =
  let solver = Sttc_logic.Sat.Solver.create () in
  let rec loop () =
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.qcond t.qlock
    done;
    if Queue.is_empty t.queue then begin
      (* stopping and drained *)
      Mutex.unlock t.qlock;
      ()
    end
    else begin
      let job = Queue.pop t.queue in
      Metrics.set_gauge "serve.queue_depth" (float_of_int (Queue.length t.queue));
      Mutex.unlock t.qlock;
      let request =
        match job.request.Request.timeout_s with
        | Some _ -> job.request
        | None ->
            { job.request with Request.timeout_s = t.cfg.Config.default_timeout_s }
      in
      let response = Handler.handle ~solver t.session request in
      send job.conn response;
      (match job.request.Request.payload with
      | Request.Shutdown -> signal_stop t
      | _ -> ());
      loop ()
    end
  in
  loop ()

(* ---------- frame intake (main thread) ---------- *)

let enqueue t conn line =
  match Request.of_string line with
  | Error e ->
      send conn (Response.Error { id = None; message = "bad request: " ^ e })
  | Ok request ->
      Mutex.lock t.qlock;
      if t.stopping then begin
        Mutex.unlock t.qlock;
        send conn
          (Response.Error
             { id = request.Request.id; message = "server is shutting down" })
      end
      else if Queue.length t.queue >= t.cfg.Config.queue_capacity then begin
        Mutex.unlock t.qlock;
        Metrics.incr "serve.overloaded";
        send conn (Response.Overloaded { id = request.Request.id })
      end
      else begin
        Queue.push { conn; request } t.queue;
        Metrics.set_gauge "serve.queue_depth"
          (float_of_int (Queue.length t.queue));
        Condition.signal t.qcond;
        Mutex.unlock t.qlock
      end

(* split the accumulated bytes into complete newline-terminated frames *)
let drain_lines conn =
  let text = Buffer.contents conn.rbuf in
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub text !start (i - !start) :: !lines;
        start := i + 1
      end)
    text;
  Buffer.clear conn.rbuf;
  Buffer.add_substring conn.rbuf text !start (String.length text - !start);
  List.rev !lines

let run cfg =
  List.iter (fun c -> Metrics.incr ~by:0 c) counters;
  Metrics.set_gauge "serve.queue_depth" 0.;
  (* a stale socket file from a crashed daemon would make bind fail *)
  (try Unix.unlink cfg.Config.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.Config.socket);
  Unix.listen listen_fd 64;
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      cfg;
      session = Session.create ~capacity:cfg.Config.cache_capacity ();
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stopping = false;
      wake_w;
    }
  in
  (* writes to connections that died mid-response must not kill the
     daemon with SIGPIPE; [send] handles the EPIPE instead *)
  let previous_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let workers =
    List.init (max 1 cfg.Config.jobs) (fun _ -> Domain.spawn (fun () -> worker t))
  in
  cfg.Config.on_event
    (Printf.sprintf "listening on %s (%d workers)" cfg.Config.socket
       (List.length workers));
  let conns = Hashtbl.create 16 in
  let stopping () =
    Mutex.lock t.qlock;
    let s = t.stopping in
    Mutex.unlock t.qlock;
    s
  in
  let close_conn conn =
    Mutex.lock conn.wlock;
    conn.alive <- false;
    Mutex.unlock conn.wlock;
    Hashtbl.remove conns conn.fd;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  let chunk = Bytes.create 65536 in
  while not (stopping ()) do
    let fds =
      listen_fd :: wake_r :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
    in
    match Unix.select fds [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = wake_r then
              ignore (Unix.read wake_r chunk 0 1)
            else if fd = listen_fd then begin
              let client_fd, _ = Unix.accept listen_fd in
              Hashtbl.replace conns client_fd
                {
                  fd = client_fd;
                  rbuf = Buffer.create 4096;
                  wlock = Mutex.create ();
                  alive = true;
                }
            end
            else
              match Hashtbl.find_opt conns fd with
              | None -> ()
              | Some conn -> (
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> close_conn conn
                  | exception
                      Unix.Unix_error
                        ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
                      close_conn conn
                  | n ->
                      Buffer.add_subbytes conn.rbuf chunk 0 n;
                      List.iter (enqueue t conn) (drain_lines conn)))
          readable
  done;
  (* teardown: stop accepting, drain the queue through the workers,
     then close everything and remove the socket *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  List.iter Domain.join workers;
  Hashtbl.iter (fun _ conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
    conns;
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  (try Unix.close wake_w with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.Config.socket with Unix.Unix_error _ -> ());
  (match previous_sigpipe with
  | Some b -> ( try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
  | None -> ());
  cfg.Config.on_event "stopped"
