module Json = Sttc_obs.Json
module Flow = Sttc_core.Flow
module Manifest = Sttc_campaign.Manifest
module Harness = Sttc_attack.Harness

type source =
  | Named of string
  | Inline of { name : string; text : string }

type protect = {
  source : source;
  algorithm : Flow.algorithm;
  config : Manifest.config;
  seed : int;
  backend : string;
  sign_off : bool;
  emit_foundry : bool;
  emit_bitstream : bool;
  emit_verilog : bool;
  timing : bool;
}

type attack = {
  source : source;
  algorithm : Flow.algorithm;
  seed : int;
  backend : string;
  config : Harness.Config.t;
  timing : bool;
}

type lint = {
  source : source;
  algorithms : Flow.algorithm list;
  semantic : bool;
  seed : int;
  fraction : float option;
  budget : int option;
  rules : string list;
  suppress : string list;
  format : [ `Text | `Json ];
}

type payload =
  | Protect of protect
  | Attack of attack
  | Lint of lint
  | Stats
  | Ping of { sleep_s : float }
  | Shutdown

type t = { id : string option; timeout_s : float option; payload : payload }

let verb = function
  | Protect _ -> "protect"
  | Attack _ -> "attack"
  | Lint _ -> "lint"
  | Stats -> "stats"
  | Ping _ -> "ping"
  | Shutdown -> "shutdown"

(* ---------- encoding ---------- *)

let source_to_json = function
  | Named n -> Json.String n
  | Inline { name; text } ->
      Json.Obj [ ("name", Json.String name); ("bench", Json.String text) ]

let opt name f = function Some v -> [ (name, f v) ] | None -> []
let flag name b = if b then [ (name, Json.Bool true) ] else []

(* emitted only off its default so pre-backend requests render
   byte-identically *)
let backend_field b = if b = "stt" then [] else [ ("backend", Json.String b) ]

let to_json t =
  let common = opt "id" (fun s -> Json.String s) t.id in
  let budgeted = opt "timeout_s" (fun s -> Json.Float s) t.timeout_s in
  let fields =
    match t.payload with
    | Protect p ->
        [
          ("netlist", source_to_json p.source);
          ("algorithm", Flow.algorithm_to_json p.algorithm);
          ("config", Manifest.config_to_json p.config);
          ("seed", Json.Int p.seed);
        ]
        @ backend_field p.backend
        @ flag "sign_off" p.sign_off
        @ flag "emit_foundry" p.emit_foundry
        @ flag "emit_bitstream" p.emit_bitstream
        @ flag "emit_verilog" p.emit_verilog
        @ flag "timing" p.timing
    | Attack a ->
        [
          ("netlist", source_to_json a.source);
          ("algorithm", Flow.algorithm_to_json a.algorithm);
          ("seed", Json.Int a.seed);
          ("config", Harness.Config.to_json a.config);
        ]
        @ backend_field a.backend
        @ flag "timing" a.timing
    | Lint l ->
        [
          ("netlist", source_to_json l.source);
          ( "algorithms",
            Json.List (List.map Flow.algorithm_to_json l.algorithms) );
          ("seed", Json.Int l.seed);
        ]
        @ flag "semantic" l.semantic
        @ opt "fraction" (fun f -> Json.Float f) l.fraction
        @ opt "budget" (fun b -> Json.Int b) l.budget
        @ (if l.rules = [] then []
           else
             [ ("rules", Json.List (List.map (fun r -> Json.String r) l.rules)) ])
        @ (if l.suppress = [] then []
           else
             [
               ( "suppress",
                 Json.List (List.map (fun r -> Json.String r) l.suppress) );
             ])
        @ [
            ( "format",
              Json.String (match l.format with `Text -> "text" | `Json -> "json")
            );
          ]
    | Stats | Shutdown -> []
    | Ping { sleep_s } ->
        if sleep_s = 0. then [] else [ ("sleep_s", Json.Float sleep_s) ]
  in
  Json.Obj (common @ [ ("verb", Json.String (verb t.payload)) ] @ budgeted @ fields)

let to_string t = Json.to_string ~minify:true (to_json t)

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind
let mem name j = Option.value (Json.member name j) ~default:Json.Null

let source_of_json = function
  | Json.Null -> Error "missing \"netlist\""
  | Json.String n -> Ok (Named n)
  | Json.Obj _ as j -> (
      match (Json.to_string_opt (mem "bench" j), mem "name" j) with
      | Some text, name_field ->
          let name =
            Option.value (Json.to_string_opt name_field) ~default:"bench"
          in
          Ok (Inline { name; text })
      | None, Json.String n -> Ok (Named n)
      | None, _ -> Error "\"netlist\" object needs \"bench\" or \"name\"")
  | _ -> Error "\"netlist\" must be a string or an object"

let bool_field j name =
  match mem name j with
  | Json.Null -> Ok false
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%S must be a boolean" name)

let algorithm_field j =
  match mem "algorithm" j with
  | Json.Null -> Ok (Flow.Independent { count = 5 })
  | a -> Flow.algorithm_of_json a

let seed_field j =
  match mem "seed" j with
  | Json.Null -> Ok Sttc_experiments.Runner.master_seed
  | Json.Int n -> Ok n
  | _ -> Error "\"seed\" must be an integer"

(* the name is validated here so a typo fails the request parse, not the
   handler *)
let backend_of_json j =
  match mem "backend" j with
  | Json.Null -> Ok "stt"
  | Json.String s -> (
      match Sttc_backend.Backend.find s with
      | Some _ -> Ok s
      | None ->
          Error
            (Printf.sprintf "unknown backend %s (expected one of %s)" s
               (String.concat ", " (Sttc_backend.Backend.names ()))))
  | _ -> Error "\"backend\" must be a string"

let protect_of_json j =
  let* source = source_of_json (mem "netlist" j) in
  let* algorithm = algorithm_field j in
  let* config =
    match mem "config" j with
    | Json.Null -> Ok Manifest.default_config
    | c -> Manifest.config_of_json c
  in
  let* seed = seed_field j in
  let* backend = backend_of_json j in
  let* sign_off = bool_field j "sign_off" in
  let* emit_foundry = bool_field j "emit_foundry" in
  let* emit_bitstream = bool_field j "emit_bitstream" in
  let* emit_verilog = bool_field j "emit_verilog" in
  let* timing = bool_field j "timing" in
  Ok
    (Protect
       {
         source;
         algorithm;
         config;
         seed;
         backend;
         sign_off;
         emit_foundry;
         emit_bitstream;
         emit_verilog;
         timing;
       })

let attack_of_json j =
  let* source = source_of_json (mem "netlist" j) in
  let* algorithm = algorithm_field j in
  let* seed = seed_field j in
  let* backend = backend_of_json j in
  let* config =
    match mem "config" j with
    | Json.Null -> Ok Harness.Config.default
    | c -> Harness.Config.of_json c
  in
  let* timing = bool_field j "timing" in
  Ok (Attack { source; algorithm; seed; backend; config; timing })

let string_list_field j name =
  match mem name j with
  | Json.Null -> Ok []
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "%S must list strings" name)
      in
      go [] items
  | _ -> Error (Printf.sprintf "%S must be a list" name)

let lint_of_json j =
  let* source = source_of_json (mem "netlist" j) in
  let* algorithms =
    match mem "algorithms" j with
    | Json.Null -> Ok []
    | Json.List items ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | a :: rest -> (
              match Flow.algorithm_of_json a with
              | Ok alg -> go (alg :: acc) rest
              | Error _ as e -> e)
        in
        go [] items
    | _ -> Error "\"algorithms\" must be a list"
  in
  let* semantic = bool_field j "semantic" in
  let* seed = seed_field j in
  let* fraction =
    match mem "fraction" j with
    | Json.Null -> Ok None
    | Json.Int n -> Ok (Some (float_of_int n))
    | Json.Float f -> Ok (Some f)
    | _ -> Error "\"fraction\" must be a number"
  in
  let* budget =
    match mem "budget" j with
    | Json.Null -> Ok None
    | Json.Int n -> Ok (Some n)
    | _ -> Error "\"budget\" must be an integer"
  in
  let* rules = string_list_field j "rules" in
  let* suppress = string_list_field j "suppress" in
  let* format =
    match mem "format" j with
    | Json.Null | Json.String "text" -> Ok `Text
    | Json.String "json" -> Ok `Json
    | _ -> Error "\"format\" must be \"text\" or \"json\""
  in
  Ok
    (Lint
       { source; algorithms; semantic; seed; fraction; budget; rules; suppress; format })

let of_json j =
  match j with
  | Json.Obj _ ->
      let id = Json.to_string_opt (mem "id" j) in
      let* timeout_s =
        match mem "timeout_s" j with
        | Json.Null -> Ok None
        | Json.Int n -> Ok (Some (float_of_int n))
        | Json.Float f -> Ok (Some f)
        | _ -> Error "\"timeout_s\" must be a number"
      in
      let* payload =
        match Json.to_string_opt (mem "verb" j) with
        | None -> Error "missing \"verb\""
        | Some "protect" -> protect_of_json j
        | Some "attack" -> attack_of_json j
        | Some "lint" -> lint_of_json j
        | Some "stats" -> Ok Stats
        | Some "shutdown" -> Ok Shutdown
        | Some "ping" ->
            let* sleep_s =
              match mem "sleep_s" j with
              | Json.Null -> Ok 0.
              | Json.Int n -> Ok (float_of_int n)
              | Json.Float f -> Ok f
              | _ -> Error "\"sleep_s\" must be a number"
            in
            Ok (Ping { sleep_s })
        | Some v -> Error ("unknown verb " ^ v)
      in
      Ok { id; timeout_s; payload }
  | _ -> Error "request must be a JSON object"

let of_string s =
  match Json.of_string s with Error e -> Error e | Ok j -> of_json j
