(** The [sttc serve] daemon: a Unix-domain-socket server speaking
    newline-delimited JSON {!Request}/{!Response} frames.

    Architecture — one select loop, N worker domains, one bounded queue:

    - the {e main thread} owns the listening socket and every
      connection's read side: it accepts clients, accumulates bytes
      into frames, parses each frame and enqueues the typed request;
    - a bounded queue ([queue_capacity]) connects intake to execution;
      a full queue answers with a typed [Overloaded] response
      immediately — the daemon never buffers unboundedly and never
      blocks the intake loop on a slow request;
    - each {e worker domain} pops requests, executes them through
      {!Handler.handle} with its own persistent SAT solver arena, and
      writes the response to the client under a per-connection write
      lock (responses to pipelined requests may arrive out of order —
      correlate with the echoed [id]);
    - the netlist cache ({!Session}) is shared by all workers.

    Shutdown: a [shutdown] request is answered first, then the daemon
    stops intake, drains queued requests, joins every worker and
    removes the socket file — no orphans, verified by the CI gate.

    Metrics: [serve.requests], [serve.errors], [serve.overloaded],
    [serve.cache_hits]/[misses]/[evictions] (all pre-seeded at start),
    the [serve.queue_depth] gauge and the [serve.request_seconds]
    histogram.  [stats] responses snapshot the live registry, so a
    snapshot taken mid-request may trail by the in-flight updates. *)

module Config : sig
  type t = {
    socket : string;  (** socket path (beware the ~100-byte OS limit) *)
    jobs : int;  (** worker domains (default 2; min 1) *)
    queue_capacity : int;
        (** queued-request bound; beyond it clients get [Overloaded] *)
    cache_capacity : int;
        (** netlist cache entries; [0] disables caching *)
    default_timeout_s : float option;
        (** budget applied to requests that carry none *)
    on_event : string -> unit;  (** lifecycle log consumer *)
  }

  val default : t
  (** socket ["sttc.sock"], 2 jobs, queue 64, cache 32, no default
      budget, events dropped. *)

  val with_socket : string -> t -> t
  val with_jobs : int -> t -> t
  val with_queue_capacity : int -> t -> t
  val with_cache_capacity : int -> t -> t
  val with_default_timeout_s : float -> t -> t
  val with_on_event : (string -> unit) -> t -> t
end

val run : Config.t -> unit
(** Serve until a [shutdown] request arrives; returns after full
    teardown.  Binds the socket (replacing a stale file), ignores
    SIGPIPE for the duration, and restores the previous handler on
    exit.  Call from the main domain (or a dedicated domain — tests and
    the bench harness spawn it on one). *)
