(** The canonical typed request surface of the sttc API.

    One request type serves two transports: the [sttc] CLI subcommands
    construct a {!t} and dispatch it through {!Handler.handle} in
    process, and the [sttc serve] daemon parses the same shape from
    newline-delimited JSON frames on a Unix-domain socket.  There is no
    second, CLI-only code path — byte-identical requests produce
    byte-identical responses on either transport.

    Wire form: one JSON object per line.  Common fields: ["verb"]
    (required), ["id"] (optional, echoed in the response), ["timeout_s"]
    (optional per-request wall budget).  Per-verb fields reuse the
    codecs of the subsystems they configure — {!Sttc_core.Flow}
    algorithms, {!Sttc_campaign.Manifest} protect configs and
    {!Sttc_attack.Harness.Config} attack configs — so a campaign
    manifest entry, a CLI flag set and a serve request all parse through
    the same schema. *)

type source =
  | Named of string
      (** a bundled benchmark ({!Sttc_netlist.Iscas_profiles} twin or
          embedded genuine circuit), resolved via
          {!Sttc_experiments.Runner.build_circuit} *)
  | Inline of { name : string; text : string }
      (** .bench source shipped in the request; [name] becomes the
          design name (the CLI passes the input file's basename so
          responses match file-based runs byte for byte) *)

type protect = {
  source : source;
  algorithm : Sttc_core.Flow.algorithm;
  config : Sttc_campaign.Manifest.config;
      (** fraction / hardening, the manifest schema *)
  seed : int;
  backend : string;
      (** protection backend name ({!Sttc_backend.Backend.names});
          ["stt"] when absent, omitted from the wire form at that
          default so pre-backend requests stay byte-identical *)
  sign_off : bool;  (** SAT-verify programmed hybrid == original *)
  emit_foundry : bool;  (** include the foundry-view .bench text *)
  emit_bitstream : bool;  (** include the provisioning bitstream *)
  emit_verilog : bool;  (** include programmed-view Verilog *)
  timing : bool;
      (** report measured wall-clock in the response; [false] (the
          default) zeroes the seconds fields so responses are
          byte-deterministic *)
}

type attack = {
  source : source;
  algorithm : Sttc_core.Flow.algorithm;
  seed : int;  (** protection seed (the attack budgets live in [config]) *)
  backend : string;
      (** backend for both the defence and the attacker model; same
          default and wire behaviour as {!protect.backend} *)
  config : Sttc_attack.Harness.Config.t;
  timing : bool;
}

type lint = {
  source : source;
  algorithms : Sttc_core.Flow.algorithm list;
      (** also lint each hybrid; [[]] = structural rules only *)
  semantic : bool;
  seed : int;
  fraction : float option;
  budget : int option;  (** semantic SAT conflict budget *)
  rules : string list;
  suppress : string list;
  format : [ `Text | `Json ];
}

type payload =
  | Protect of protect
  | Attack of attack
  | Lint of lint
  | Stats  (** live metrics snapshot of the daemon *)
  | Ping of { sleep_s : float }
      (** liveness probe; [sleep_s > 0] holds a worker for that long —
          a load-testing aid, clamped server-side *)
  | Shutdown

type t = { id : string option; timeout_s : float option; payload : payload }

val verb : payload -> string

val to_json : t -> Sttc_obs.Json.t
val of_json : Sttc_obs.Json.t -> (t, string) result

val to_string : t -> string
(** Minified single-line JSON — exactly one protocol frame, sans the
    trailing newline. *)

val of_string : string -> (t, string) result
