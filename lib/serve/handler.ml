module Flow = Sttc_core.Flow
module Hybrid = Sttc_core.Hybrid
module Provision = Sttc_core.Provision
module Harness = Sttc_attack.Harness
module Netlist = Sttc_netlist.Netlist
module Metrics = Sttc_obs.Metrics

(* ---------- the per-request wall budget ---------- *)

let timeout_message s = Printf.sprintf "request budget (%.1fs) exhausted" s

(* [Timing.with_timeout] arms a per-process [setitimer]: only the main
   domain may use it, and it must not nest (the attack harness arms it
   internally for its per-attack budgets).  Everywhere else the budget
   is enforced cooperatively — the request is classified as exhausted
   when it returns past its budget.  Both paths produce the identical
   error message, so daemon (worker-domain) and offline (main-domain)
   transports stay byte-compatible. *)
let with_budget ?(internal_timer = false) timeout_s f =
  match timeout_s with
  | None -> f ()
  | Some s when s <= 0. -> Error (timeout_message s)
  | Some s ->
      if Domain.is_main_domain () && not internal_timer then
        match Sttc_util.Timing.with_timeout ~seconds:s f with
        | Ok r -> r
        | Error `Timeout -> Error (timeout_message s)
      else
        let t0 = Sttc_util.Pool.now_s () in
        let r = f () in
        if Sttc_util.Pool.now_s () -. t0 > s then Error (timeout_message s)
        else r

(* ---------- protect ---------- *)

let hardening_of_config (c : Sttc_campaign.Manifest.config) =
  if c.harden then { Flow.extra_inputs_per_lut = 2; absorb_drivers = true }
  else Flow.no_hardening

let do_protect session (p : Request.protect) =
  match Session.netlist session p.source with
  | Error _ as e -> e
  | Ok nl -> (
      let base_sta = Session.sta session p.source nl in
      match Sttc_backend.Backend.find_exn p.backend with
      | exception Invalid_argument m -> Error m
      | backend -> (
      match
        Flow.run ~seed:p.seed
          ?fraction:p.config.Sttc_campaign.Manifest.fraction
          ~hardening:(hardening_of_config p.config)
          ~backend ~base_sta ~policy:Flow.Strict p.algorithm nl
      with
      | exception Invalid_argument m -> Error m
      | resilient ->
          let r = resilient.Flow.accepted in
          let shown =
            if p.timing then r else { r with Flow.selection_seconds = 0. }
          in
          let report = Format.asprintf "%a@." Flow.pp_result shown in
          let hybrid = r.Flow.hybrid in
          let foundry_bench =
            if p.emit_foundry then
              Some (Sttc_netlist.Bench_io.to_string (Hybrid.foundry_view hybrid))
            else None
          in
          let bitstream, programming_cost =
            if p.emit_bitstream then
              ( Some (Provision.to_string (Provision.of_hybrid hybrid)),
                Some
                  (Format.asprintf "%a@." Provision.pp_cost
                     (Provision.programming_cost ~backend hybrid)) )
            else (None, None)
          in
          let verilog =
            if p.emit_verilog then
              Some (Sttc_netlist.Verilog_out.to_string (Hybrid.programmed hybrid))
            else None
          in
          let sign_off =
            if p.sign_off then Some (Flow.sign_off r) else None
          in
          Ok
            (Response.Protect
               {
                 Response.report;
                 foundry_bench;
                 bitstream;
                 programming_cost;
                 verilog;
                 sign_off;
               })))

(* ---------- attack ---------- *)

let zero_seconds (c : Harness.campaign) =
  {
    c with
    Harness.entries =
      List.map (fun e -> { e with Harness.seconds = 0. }) c.Harness.entries;
  }

let do_attack ?solver session (a : Request.attack) =
  match Session.netlist session a.source with
  | Error _ as e -> e
  | Ok nl -> (
      match Sttc_backend.Backend.find_exn a.backend with
      | exception Invalid_argument m -> Error m
      | backend -> (
      match
        Flow.run ~seed:a.seed ~backend ~policy:Flow.Strict a.algorithm nl
      with
      | exception Invalid_argument m -> Error m
      | resilient ->
          let hybrid = resilient.Flow.accepted.Flow.hybrid in
          let campaign =
            Harness.attack ?solver ~backend ~config:a.config
              ~circuit:(Netlist.design_name nl)
              ~algorithm:(Flow.algorithm_name a.algorithm)
              hybrid
          in
          let campaign = if a.timing then campaign else zero_seconds campaign in
          let rendered = Format.asprintf "%a@." Harness.pp_campaign campaign in
          Ok (Response.Attack { campaign; rendered })))

(* ---------- lint ---------- *)

let lint_diagnostics ~algorithms ~semantic ~seed ?fraction ?budget ~rules
    ~suppress nl =
  match
    List.find_opt
      (fun r -> Sttc_lint.Lint.find_rule r = None)
      (rules @ suppress)
  with
  | Some unknown -> Error ("unknown rule " ^ unknown ^ " (see --list-rules)")
  | None -> (
      let budget =
        Option.value budget ~default:Sttc_lint.Semantic_rules.default_budget
      in
      try
        let structural = Sttc_lint.Lint.structural nl in
        let plain_semantic =
          if semantic && algorithms = [] then
            Sttc_lint.Lint.semantic (Sttc_lint.Semantic_rules.view ~budget nl)
          else []
        in
        let hybrids =
          List.concat_map
            (fun alg ->
              let r =
                (Flow.run ~seed ?fraction ~policy:Flow.Strict alg nl)
                  .Flow.accepted
              in
              let tag d =
                {
                  d with
                  Sttc_lint.Diagnostic.detail =
                    Printf.sprintf "[%s] %s" (Flow.algorithm_name alg)
                      d.Sttc_lint.Diagnostic.detail;
                }
              in
              let sec = Flow.lint_security r in
              let sem =
                if not semantic then []
                else
                  let h = r.Flow.hybrid in
                  Sttc_lint.Lint.semantic
                    (Sttc_lint.Semantic_rules.view ~luts:(Hybrid.lut_ids h)
                       ~configs:(Hybrid.bitstream h) ~budget
                       (Hybrid.foundry_view h))
              in
              List.map tag (sec @ sem))
            algorithms
        in
        Ok
          (Sttc_lint.Lint.apply ~only:rules ~suppress
             (structural @ plain_semantic @ hybrids))
      with Invalid_argument m -> Error m)

let do_lint session (l : Request.lint) =
  match Session.netlist session l.source with
  | Error _ as e -> e
  | Ok nl -> (
      match
        lint_diagnostics ~algorithms:l.algorithms ~semantic:l.semantic
          ~seed:l.seed ?fraction:l.fraction ?budget:l.budget ~rules:l.rules
          ~suppress:l.suppress nl
      with
      | Error _ as e -> e
      | Ok ds ->
          let design = Netlist.design_name nl in
          let rendered =
            match l.format with
            | `Text -> Sttc_lint.Diagnostic.render_text ~design ds
            | `Json -> Sttc_lint.Diagnostic.render_json ~design ds
          in
          Ok
            (Response.Lint
               { Response.rendered; exit_code = Sttc_lint.Lint.exit_code ds }))

(* ---------- dispatch ---------- *)

let max_ping_sleep_s = 10.

let handle ?solver session (req : Request.t) =
  Metrics.incr "serve.requests";
  let t0 = Sttc_util.Pool.now_s () in
  let result =
    match req.Request.payload with
    | Request.Ping { sleep_s } ->
        if sleep_s > 0. then Unix.sleepf (Float.min sleep_s max_ping_sleep_s);
        Ok Response.Pong
    | Request.Stats -> Ok (Response.Stats (Metrics.snapshot ()))
    | Request.Shutdown -> Ok Response.Shutting_down
    | Request.Protect p ->
        with_budget req.Request.timeout_s (fun () -> do_protect session p)
    | Request.Attack a ->
        with_budget ~internal_timer:true req.Request.timeout_s (fun () ->
            do_attack ?solver session a)
    | Request.Lint l ->
        with_budget req.Request.timeout_s (fun () -> do_lint session l)
  in
  Metrics.observe "serve.request_seconds" (Sttc_util.Pool.now_s () -. t0);
  match result with
  | Ok payload -> Response.Ok { id = req.Request.id; payload }
  | Error message ->
      Metrics.incr "serve.errors";
      Response.Error { id = req.Request.id; message }
