module Netlist = Sttc_netlist.Netlist
module Truth = Sttc_logic.Truth
module Cnf = Sttc_logic.Cnf
module Sat = Sttc_logic.Sat
module Bdd = Sttc_logic.Bdd
module Rng = Sttc_util.Rng

type failure = {
  witness : (string * bool) list;
  signal : string;
}

type result = Equivalent | Different of failure | Inconclusive of string

(* ---------- shared input space ---------- *)

let input_names nl =
  List.map (Netlist.name nl) (Netlist.pis nl)
  @ List.map (Netlist.name nl) (Netlist.dffs nl)

let check_interfaces a b =
  let sort = List.sort String.compare in
  let ins_a = sort (input_names a) and ins_b = sort (input_names b) in
  if ins_a <> ins_b then Some "primary input / state spaces differ"
  else
    let outs nl =
      sort (Array.to_list (Array.map fst (Netlist.outputs nl)))
    in
    if outs a <> outs b then Some "primary output sets differ" else None

(* ---------- random simulation ---------- *)

let check_random ?(vectors = 4096) ~seed a b =
  match check_interfaces a b with
  | Some m -> Inconclusive m
  | None -> (
      match (Simulator.create a, Simulator.create b) with
      | exception Invalid_argument m -> Inconclusive m
      | sim_a, sim_b ->
          let rng = Rng.make seed in
          let pis_a = Array.of_list (Netlist.pis a) in
          let pi_names = Array.map (Netlist.name a) pis_a in
          let dffs_a = Array.of_list (Netlist.dffs a) in
          let dff_names = Array.map (Netlist.name a) dffs_a in
          (* order B's state to match A's names *)
          let out_names = Array.map fst (Netlist.outputs a) in
          let out_index_b =
            let names_b = Array.map fst (Netlist.outputs b) in
            Array.map
              (fun n ->
                let rec find i =
                  if names_b.(i) = n then i else find (i + 1)
                in
                find 0)
              out_names
          in
          let dff_order_b =
            let names_b =
              Array.of_list (List.map (Netlist.name b) (Netlist.dffs b))
            in
            Array.map
              (fun n ->
                let rec find i =
                  if names_b.(i) = n then i else find (i + 1)
                in
                find 0)
              dff_names
          in
          let batches = max 1 ((vectors + 63) / 64) in
          let failure = ref None in
          (let batch = ref 0 in
           while !failure = None && !batch < batches do
             incr batch;
             let pi_lanes =
               Array.map (fun _ -> Rng.int64 rng) pis_a
             in
             let st_lanes = Array.map (fun _ -> Rng.int64 rng) dffs_a in
             Simulator.set_state sim_a st_lanes;
             let st_b = Array.make (Array.length dff_order_b) 0L in
             Array.iteri (fun i bi -> st_b.(bi) <- st_lanes.(i)) dff_order_b;
             Simulator.set_state sim_b st_b;
             let outs_a = Simulator.eval_comb sim_a pi_lanes in
             let outs_b = Simulator.eval_comb sim_b pi_lanes in
             (* also compare next-state functions *)
             let next_a = Simulator.state (let _ = Simulator.step sim_a pi_lanes in sim_a) in
             Simulator.set_state sim_b st_b;
             let next_b_raw =
               let _ = Simulator.step sim_b pi_lanes in
               Simulator.state sim_b
             in
             let next_b = Array.make (Array.length next_a) 0L in
             Array.iteri (fun i bi -> next_b.(i) <- next_b_raw.(bi)) dff_order_b;
             let report signal diff =
               (* extract the first differing lane as a witness *)
               let lane =
                 let rec find l =
                   if Int64.logand (Int64.shift_right_logical diff l) 1L = 1L
                   then l
                   else find (l + 1)
                 in
                 find 0
               in
               let bit v =
                 Int64.logand (Int64.shift_right_logical v lane) 1L = 1L
               in
               let witness =
                 Array.to_list
                   (Array.mapi (fun i n -> (n, bit pi_lanes.(i))) pi_names)
                 @ Array.to_list
                     (Array.mapi (fun i n -> (n, bit st_lanes.(i))) dff_names)
               in
               failure := Some { witness; signal }
             in
             Array.iteri
               (fun i name ->
                 if !failure = None then begin
                   let diff =
                     Int64.logxor outs_a.(i) outs_b.(out_index_b.(i))
                   in
                   if diff <> 0L then report name diff
                 end)
               out_names;
             Array.iteri
               (fun i name ->
                 if !failure = None then begin
                   let diff = Int64.logxor next_a.(i) next_b.(i) in
                   if diff <> 0L then report name diff
                 end)
               dff_names
           done);
          (match !failure with
          | Some f -> Different f
          | None -> Equivalent))

(* ---------- CNF encoding ---------- *)

let encode_fixed_lut cnf out table inputs =
  let n = Array.length inputs in
  if Truth.arity table <> n then invalid_arg "Equiv: LUT arity";
  for r = 0 to (1 lsl n) - 1 do
    let antecedent =
      List.init n (fun k ->
          let l = inputs.(k) in
          if (r lsr k) land 1 = 1 then -l else l)
    in
    let head = if Truth.row table r then out else -out in
    Cnf.add_clause cnf (head :: antecedent)
  done

let encode_netlist cnf ~input_var nl =
  let n = Netlist.node_count nl in
  let lit = Array.make n 0 in
  Array.iter
    (fun id ->
      let node = Netlist.node nl id in
      match node.Netlist.kind with
      | Netlist.Pi | Netlist.Dff -> lit.(id) <- input_var node.Netlist.name
      | Netlist.Const v ->
          let x = Cnf.fresh_var cnf in
          Cnf.add_clause cnf [ (if v then x else -x) ];
          lit.(id) <- x
      | Netlist.Gate fn ->
          let x = Cnf.fresh_var cnf in
          let ins =
            Array.to_list (Array.map (fun s -> lit.(s)) node.Netlist.fanins)
          in
          Cnf.encode_gate cnf x fn ins;
          lit.(id) <- x
      | Netlist.Lut { config = Some c; _ } ->
          let x = Cnf.fresh_var cnf in
          let ins = Array.map (fun s -> lit.(s)) node.Netlist.fanins in
          encode_fixed_lut cnf x c ins;
          lit.(id) <- x
      | Netlist.Lut { config = None; _ } ->
          invalid_arg
            ("Equiv.encode_netlist: unprogrammed LUT " ^ node.Netlist.name))
    (Netlist.topo_order nl);
  let pos =
    Array.to_list
      (Array.map (fun (name, id) -> (name, lit.(id))) (Netlist.outputs nl))
  in
  let ff_inputs =
    List.map
      (fun ff -> (Netlist.name nl ff, lit.((Netlist.fanins nl ff).(0))))
      (Netlist.dffs nl)
  in
  (pos, ff_inputs)

let check_sat ?(max_conflicts = max_int) a b =
  match check_interfaces a b with
  | Some m -> Inconclusive m
  | None -> (
      let cnf = Cnf.create () in
      let vars = Hashtbl.create 64 in
      let input_var name =
        match Hashtbl.find_opt vars name with
        | Some v -> v
        | None ->
            let v = Cnf.fresh_var cnf in
            Hashtbl.add vars name v;
            v
      in
      match
        ( encode_netlist cnf ~input_var a,
          encode_netlist cnf ~input_var b )
      with
      | exception Invalid_argument m -> Inconclusive m
      | (pos_a, ffs_a), (pos_b, ffs_b) ->
          let assoc name l = List.assoc name l in
          let diffs =
            List.map
              (fun (name, la) ->
                let lb = assoc name pos_b in
                let d = Cnf.fresh_var cnf in
                Cnf.encode_xor cnf d la lb;
                (name, d))
              pos_a
            @ List.map
                (fun (name, la) ->
                  let lb = assoc name ffs_b in
                  let d = Cnf.fresh_var cnf in
                  Cnf.encode_xor cnf d la lb;
                  (name, d))
                ffs_a
          in
          Cnf.add_clause cnf (List.map snd diffs);
          let solver = Sat.Solver.of_cnf cnf in
          (match Sat.Solver.solve ~max_conflicts solver with
          | Sat.Unknown _ -> Inconclusive "SAT conflict budget exhausted"
          | Sat.Unsat -> Equivalent
          | Sat.Sat model ->
              let witness =
                Hashtbl.fold
                  (fun name v acc -> (name, Sat.model_value model v) :: acc)
                  vars []
                |> List.sort (fun (x, _) (y, _) -> String.compare x y)
              in
              let signal =
                match
                  List.find_opt
                    (fun (_, d) -> Sat.model_value model d)
                    diffs
                with
                | Some (name, _) -> name
                | None -> "?"
              in
              Different { witness; signal }))

let check_bdd a b =
  match check_interfaces a b with
  | Some m -> Inconclusive m
  | None -> (
      let m = Bdd.manager () in
      let vars = Hashtbl.create 64 in
      let next = ref 0 in
      let input_bdd name =
        match Hashtbl.find_opt vars name with
        | Some v -> Bdd.var m v
        | None ->
            let v = !next in
            incr next;
            Hashtbl.add vars name v;
            Bdd.var m v
      in
      let build nl =
        let lit = Array.make (Netlist.node_count nl) (Bdd.zero m) in
        Array.iter
          (fun id ->
            let node = Netlist.node nl id in
            match node.Netlist.kind with
            | Netlist.Pi | Netlist.Dff ->
                lit.(id) <- input_bdd node.Netlist.name
            | Netlist.Const v ->
                lit.(id) <- (if v then Bdd.one m else Bdd.zero m)
            | Netlist.Gate fn ->
                let ins =
                  Array.to_list
                    (Array.map (fun s -> lit.(s)) node.Netlist.fanins)
                in
                lit.(id) <-
                  (match fn with
                  | Sttc_logic.Gate_fn.Buf -> List.hd ins
                  | Sttc_logic.Gate_fn.Not -> Bdd.lnot m (List.hd ins)
                  | Sttc_logic.Gate_fn.And _ -> Bdd.land_list m ins
                  | Sttc_logic.Gate_fn.Nand _ ->
                      Bdd.lnot m (Bdd.land_list m ins)
                  | Sttc_logic.Gate_fn.Or _ -> Bdd.lor_list m ins
                  | Sttc_logic.Gate_fn.Nor _ -> Bdd.lnot m (Bdd.lor_list m ins)
                  | Sttc_logic.Gate_fn.Xor _ -> Bdd.lxor_list m ins
                  | Sttc_logic.Gate_fn.Xnor _ ->
                      Bdd.lnot m (Bdd.lxor_list m ins))
            | Netlist.Lut { config = Some c; _ } ->
                (* Shannon-style: OR of on-set cubes over fanin BDDs *)
                let ins = Array.map (fun s -> lit.(s)) node.Netlist.fanins in
                let acc = ref (Bdd.zero m) in
                for r = 0 to (1 lsl Truth.arity c) - 1 do
                  if Truth.row c r then begin
                    let cube = ref (Bdd.one m) in
                    Array.iteri
                      (fun k f ->
                        let f' =
                          if (r lsr k) land 1 = 1 then f else Bdd.lnot m f
                        in
                        cube := Bdd.land_ m !cube f')
                      ins;
                    acc := Bdd.lor_ m !acc !cube
                  end
                done;
                lit.(id) <- !acc
            | Netlist.Lut { config = None; _ } ->
                invalid_arg
                  ("Equiv.check_bdd: unprogrammed LUT " ^ node.Netlist.name))
          (Netlist.topo_order nl);
        lit
      in
      match (build a, build b) with
      | exception Invalid_argument msg -> Inconclusive msg
      | lit_a, lit_b ->
          let signals =
            Array.to_list
              (Array.map
                 (fun (name, id) -> (name, lit_a.(id), `B id))
                 (Netlist.outputs a))
          in
          ignore signals;
          let pairs =
            Array.to_list
              (Array.map
                 (fun (name, id) ->
                   let id_b =
                     let rec find i =
                       let name_b, idb = (Netlist.outputs b).(i) in
                       if name_b = name then idb else find (i + 1)
                     in
                     find 0
                   in
                   (name, lit_a.(id), lit_b.(id_b)))
                 (Netlist.outputs a))
            @ List.map
                (fun ff ->
                  let name = Netlist.name a ff in
                  let da = lit_a.((Netlist.fanins a ff).(0)) in
                  let ffb = Netlist.find_exn b name in
                  let db = lit_b.((Netlist.fanins b ffb).(0)) in
                  (name, da, db))
                (Netlist.dffs a)
          in
          let rec check = function
            | [] -> Equivalent
            | (name, fa, fb) :: rest ->
                if Bdd.equal fa fb then check rest
                else
                  let diff = Bdd.lxor_ m fa fb in
                  let assignment =
                    match Bdd.any_sat diff with
                    | Some l -> l
                    | None -> []
                  in
                  let by_index =
                    Hashtbl.fold (fun n v acc -> (v, n) :: acc) vars []
                  in
                  let witness =
                    List.map
                      (fun (v, value) -> (List.assoc v by_index, value))
                      assignment
                  in
                  Different { witness; signal = name }
          in
          check pairs)
