(** Three-valued simulation of hybrids with unknown LUT contents.

    Every unprogrammed LUT outputs X; the simulation shows how far the
    unknowns propagate and which observation points (primary outputs,
    flip-flop inputs) they reach.  The truth-table-extraction attack uses
    this to decide when a missing gate's output is observable, and the
    defender can use it to confirm that the missing gates actually shield
    the circuit's behaviour. *)

type values = Sttc_logic.Ternary.v array
(** Indexed by node id. *)

val eval_comb :
  ?state:Sttc_logic.Ternary.v array ->
  Sttc_netlist.Netlist.t ->
  Sttc_logic.Ternary.v array ->
  values
(** [eval_comb nl pis] evaluates the combinational logic under the given
    PI values (in [Netlist.pis] order).  [state] gives flip-flop outputs
    (default all X).  Programmed LUTs evaluate their table (with
    unknown-input resolution); unprogrammed LUTs yield X whenever their
    output is not forced. *)

val outputs : Sttc_netlist.Netlist.t -> values -> Sttc_logic.Ternary.v array
(** Primary-output values (in [Netlist.outputs] order) from a {!values}. *)

val unknown_outputs : Sttc_netlist.Netlist.t -> values -> int
(** How many primary outputs are X — the paper's intuition of "the foundry
    cannot determine the functionality": with good selection this stays
    high across input patterns. *)

val x_reaches_observation : Sttc_netlist.Netlist.t -> values -> bool
(** True when any primary output or flip-flop D-input carries X. *)
