(** Bit-parallel logic simulation: 64 independent patterns per step.

    Lane [i] of every [int64] word is pattern [i].  Flip-flops hold state
    across {!step} calls; {!reset} clears them to 0.  LUT slots evaluate
    their programmed configuration; simulating a netlist containing an
    unprogrammed LUT raises unless an override configuration is supplied
    at creation — this is exactly the information asymmetry the defence
    creates, and the attack code exploits the same interface. *)

type t

val create :
  ?configs:(Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t) list ->
  Sttc_netlist.Netlist.t ->
  t
(** [configs] override/supply LUT configurations without rewriting the
    netlist.  Raises [Invalid_argument] if any LUT remains unconfigured or
    an override has the wrong arity. *)

val netlist : t -> Sttc_netlist.Netlist.t

val reset : t -> unit
(** All flip-flops to 0 in every lane. *)

val set_state : t -> int64 array -> unit
(** Flip-flop values in [Netlist.dffs] order. *)

val state : t -> int64 array

val step : t -> int64 array -> int64 array
(** [step t pis] evaluates one clock cycle: combinational logic under the
    given primary-input lanes (in [Netlist.pis] order), returns the
    primary-output lanes (in [Netlist.outputs] order), then updates the
    flip-flops.  Raises [Invalid_argument] on a PI-count mismatch. *)

val eval_comb : t -> int64 array -> int64 array
(** Like {!step} but without the state update (outputs of the current
    combinational evaluation). *)

val node_values : t -> int64 array
(** Per-node values of the latest evaluation (after {!step} or
    {!eval_comb}). *)

val run_sequence : t -> int64 array list -> int64 array list
(** Feed a sequence of PI lane-vectors, one per cycle, from reset; collect
    the PO lane-vectors. *)

val eval_truth_lanes : Sttc_logic.Truth.t -> int64 array -> int64
(** Bit-parallel truth-table evaluation (exposed for tests and for the
    attack code): input [k]'s lanes in element [k]. *)
