module Netlist = Sttc_netlist.Netlist
module Ternary = Sttc_logic.Ternary

type values = Ternary.v array

let eval_comb ?state nl pis =
  let pi_ids = Array.of_list (Netlist.pis nl) in
  if Array.length pis <> Array.length pi_ids then
    invalid_arg "Ternary_sim.eval_comb: PI count mismatch";
  let dff_ids = Array.of_list (Netlist.dffs nl) in
  let state =
    match state with
    | None -> Array.make (Array.length dff_ids) Ternary.X
    | Some s ->
        if Array.length s <> Array.length dff_ids then
          invalid_arg "Ternary_sim.eval_comb: state length mismatch"
        else s
  in
  let values = Array.make (Netlist.node_count nl) Ternary.X in
  Array.iteri (fun i id -> values.(id) <- pis.(i)) pi_ids;
  Array.iteri (fun i id -> values.(id) <- state.(i)) dff_ids;
  Array.iter
    (fun id ->
      let node = Netlist.node nl id in
      match node.Netlist.kind with
      | Netlist.Pi | Netlist.Dff -> ()
      | Netlist.Const v -> values.(id) <- Ternary.of_bool v
      | Netlist.Gate fn ->
          let inputs = Array.map (fun s -> values.(s)) node.Netlist.fanins in
          values.(id) <- Ternary.eval_gate fn inputs
      | Netlist.Lut { config = Some c; _ } ->
          let inputs = Array.map (fun s -> values.(s)) node.Netlist.fanins in
          values.(id) <- Ternary.eval_truth c inputs
      | Netlist.Lut { config = None; _ } -> values.(id) <- Ternary.X)
    (Netlist.topo_order nl);
  values

let outputs nl values =
  Array.map (fun (_, id) -> values.(id)) (Netlist.outputs nl)

let unknown_outputs nl values =
  Array.fold_left
    (fun acc v -> if v = Ternary.X then acc + 1 else acc)
    0 (outputs nl values)

let x_reaches_observation nl values =
  Array.exists (fun v -> v = Ternary.X) (outputs nl values)
  || List.exists
       (fun ff -> values.((Netlist.fanins nl ff).(0)) = Ternary.X)
       (Netlist.dffs nl)
