(** Equivalence checking between an original netlist and its protected
    (programmed) hybrid — the sign-off step of the Figure 2 flow.

    Sequential circuits are compared on their combinational view: primary
    inputs and flip-flop outputs are free variables (matched across the
    two netlists by name), and every primary output and every flip-flop
    D-input must implement the same function.  Because the hybrid flow
    preserves flip-flops and names, this is a sound and complete check for
    the transformations in this code base.

    Three engines with different scale/assurance trade-offs:
    random bit-parallel simulation (fast, incomplete), BDDs (complete,
    small circuits), and a SAT miter (complete, scales furthest). *)

type failure = {
  witness : (string * bool) list;
      (** assignment to PIs and state inputs exposing the difference *)
  signal : string;  (** the PO name or flip-flop name that differs *)
}

type result = Equivalent | Different of failure | Inconclusive of string

val check_random :
  ?vectors:int -> seed:int -> Sttc_netlist.Netlist.t -> Sttc_netlist.Netlist.t -> result
(** [vectors] (default 4096) random assignments in bit-parallel batches.
    [Equivalent] here means "no difference found". *)

val check_sat :
  ?max_conflicts:int ->
  Sttc_netlist.Netlist.t ->
  Sttc_netlist.Netlist.t ->
  result
(** Complete modulo the conflict budget (default unlimited). *)

val check_bdd : Sttc_netlist.Netlist.t -> Sttc_netlist.Netlist.t -> result
(** Complete; practical up to a few thousand gates on well-behaved
    circuits. *)

val encode_netlist :
  Sttc_logic.Cnf.t ->
  input_var:(string -> Sttc_logic.Cnf.lit) ->
  Sttc_netlist.Netlist.t ->
  (string * Sttc_logic.Cnf.lit) list * (string * Sttc_logic.Cnf.lit) list
(** Tseitin-encode the combinational view of a netlist into an existing
    formula.  [input_var] supplies literals for PIs and flip-flop outputs
    (by name, enabling variable sharing across netlists).  Returns the
    (PO name, literal) and (flip-flop name, D-input literal) associations.
    Raises [Invalid_argument] on unprogrammed LUTs.  Exposed for the SAT
    attack, which builds its own miters. *)
