module Netlist = Sttc_netlist.Netlist
module Truth = Sttc_logic.Truth
module Gate_fn = Sttc_logic.Gate_fn

type t = {
  nl : Netlist.t;
  order : Netlist.node_id array;
  pis : Netlist.node_id array;
  dffs : Netlist.node_id array;
  out_drivers : Netlist.node_id array;
  config : Truth.t option array; (* per node, for LUT nodes *)
  values : int64 array;
  ff_state : int64 array; (* by dff position *)
}

let eval_truth_lanes table inputs =
  let n = Truth.arity table in
  if Array.length inputs <> n then
    invalid_arg "Simulator.eval_truth_lanes: arity";
  let out = ref 0L in
  for r = 0 to (1 lsl n) - 1 do
    if Truth.row table r then begin
      (* lanes where the inputs spell row r *)
      let m = ref (-1L) in
      for k = 0 to n - 1 do
        let v = inputs.(k) in
        m := Int64.logand !m (if (r lsr k) land 1 = 1 then v else Int64.lognot v)
      done;
      out := Int64.logor !out !m
    end
  done;
  !out

let gate_lanes fn inputs =
  let land_all () = Array.fold_left Int64.logand (-1L) inputs in
  let lor_all () = Array.fold_left Int64.logor 0L inputs in
  let lxor_all () = Array.fold_left Int64.logxor 0L inputs in
  match fn with
  | Gate_fn.Buf -> inputs.(0)
  | Gate_fn.Not -> Int64.lognot inputs.(0)
  | Gate_fn.And _ -> land_all ()
  | Gate_fn.Nand _ -> Int64.lognot (land_all ())
  | Gate_fn.Or _ -> lor_all ()
  | Gate_fn.Nor _ -> Int64.lognot (lor_all ())
  | Gate_fn.Xor _ -> lxor_all ()
  | Gate_fn.Xnor _ -> Int64.lognot (lxor_all ())

let create ?(configs = []) nl =
  let n = Netlist.node_count nl in
  let config = Array.make n None in
  Netlist.iter
    (fun id node ->
      match node.Netlist.kind with
      | Netlist.Lut { config = c; _ } -> config.(id) <- c
      | _ -> ())
    nl;
  List.iter
    (fun (id, c) ->
      match Netlist.kind nl id with
      | Netlist.Lut { arity; _ } ->
          if Truth.arity c <> arity then
            invalid_arg "Simulator.create: config arity mismatch";
          config.(id) <- Some c
      | _ -> invalid_arg "Simulator.create: config target is not a LUT")
    configs;
  Netlist.iter
    (fun id node ->
      match node.Netlist.kind with
      | Netlist.Lut _ when config.(id) = None ->
          invalid_arg
            ("Simulator.create: unprogrammed LUT " ^ node.Netlist.name)
      | _ -> ())
    nl;
  let dffs = Array.of_list (Netlist.dffs nl) in
  {
    nl;
    order = Netlist.topo_order nl;
    pis = Array.of_list (Netlist.pis nl);
    dffs;
    out_drivers = Array.map snd (Netlist.outputs nl);
    config;
    values = Array.make n 0L;
    ff_state = Array.make (Array.length dffs) 0L;
  }

let netlist t = t.nl
let reset t = Array.fill t.ff_state 0 (Array.length t.ff_state) 0L

let set_state t st =
  if Array.length st <> Array.length t.ff_state then
    invalid_arg "Simulator.set_state: wrong length";
  Array.blit st 0 t.ff_state 0 (Array.length st)

let state t = Array.copy t.ff_state

let eval_into t pi_lanes =
  if Array.length pi_lanes <> Array.length t.pis then
    invalid_arg "Simulator: PI count mismatch";
  Array.iteri (fun i pi -> t.values.(pi) <- pi_lanes.(i)) t.pis;
  Array.iteri (fun i ff -> t.values.(ff) <- t.ff_state.(i)) t.dffs;
  Array.iter
    (fun id ->
      let node = Netlist.node t.nl id in
      match node.Netlist.kind with
      | Netlist.Pi | Netlist.Dff -> ()
      | Netlist.Const v -> t.values.(id) <- (if v then -1L else 0L)
      | Netlist.Gate fn ->
          let inputs = Array.map (fun s -> t.values.(s)) node.Netlist.fanins in
          t.values.(id) <- gate_lanes fn inputs
      | Netlist.Lut _ ->
          let inputs = Array.map (fun s -> t.values.(s)) node.Netlist.fanins in
          let table =
            match t.config.(id) with
            | Some c -> c
            | None -> assert false (* rejected in create *)
          in
          t.values.(id) <- eval_truth_lanes table inputs)
    t.order

let outputs_of_values t = Array.map (fun d -> t.values.(d)) t.out_drivers

let eval_comb t pi_lanes =
  eval_into t pi_lanes;
  outputs_of_values t

let step t pi_lanes =
  eval_into t pi_lanes;
  let outs = outputs_of_values t in
  Array.iteri
    (fun i ff ->
      let d = (Netlist.fanins t.nl ff).(0) in
      t.ff_state.(i) <- t.values.(d))
    t.dffs;
  outs

let node_values t = Array.copy t.values

let run_sequence t seq =
  reset t;
  List.map (fun pis -> step t pis) seq
