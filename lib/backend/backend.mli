(** Pluggable protection backends.

    The paper's STT-LUT defense is one point in a family of
    camouflaging/threshold techniques that all share a shape: an
    attacker-opaque cell with its own delay/power/area entries, a
    provisioning model that writes the secret configuration, a CNF
    description of what the attacker does {e not} know, and per-cell
    security constants for the Eq. 1-3 estimates.  A {!t} bundles those
    four axes so the flow, the attack harness, the campaign engine and
    the CLI can be cross-technology without special cases.

    What is backend-owned: the reconfigurable-cell technology entry
    ({!Sttc_tech.Library.lut_style}), the candidate restriction of the
    unknown function (and therefore the SAT encoding and keyspace
    accounting), the [alpha]/[p] constants of the security equations,
    and the per-cell write energy/time used by provisioning.

    What stays flow-owned: gate selection (which runs against the
    canonical library, so the hybrid structure is a pure function of
    (netlist, algorithm, seed) and is {e identical across backends}),
    the hybrid construction, equivalence sign-off, and the lint rules
    on the resulting structure. *)

type t = {
  name : string;  (** CLI / JSON identifier, e.g. ["stt"] *)
  description : string;
  lut_style : Sttc_tech.Library.lut_style;
      (** the technology entry used to price the hybrid in {!Ppa} *)
  cell_noun : string;
      (** the word for one programmable cell in provisioning reports,
          e.g. ["MTJ"] *)
  candidates : (int -> Sttc_logic.Truth.t list) option;
      (** [None]: a cell of arity [n] realizes any of the [2^2^n]
          functions (STT LUT).  [Some f]: it realizes exactly [f n] —
          the attacker knows the family, and the SAT attack may restrict
          its key variables accordingly. *)
  alpha : int -> float;  (** test patterns per missing cell (Eq. 1-2) *)
  p : int -> float;  (** plausible candidate count per missing cell *)
  write_energy_fj : float;  (** per-cell configuration write energy *)
  write_time_ns : float;  (** per-cell serial configuration time *)
}

val name : t -> string
val description : t -> string

val restricted : t -> bool
(** True when the backend constrains the unknown function to a known
    candidate family (e.g. TVD). *)

val candidate_tables : t -> arity:int -> Sttc_logic.Truth.t list option
(** The candidate truth tables of one cell, when restricted. *)

val cell_keyspace : t -> arity:int -> Sttc_util.Lognum.t
(** Number of distinct configurations of one cell: [2^2^n] for a free
    backend, the candidate-family size for a restricted one. *)

val search_space : t -> arities:int list -> Sttc_util.Lognum.t
(** Product of {!cell_keyspace} over the protected cells — the brute
    force keyspace an attacker faces. *)

(** {2 Registry} *)

val stt : t
(** The paper's technology.  Every constant equals the pre-backend
    defaults, so flows run under [stt] are byte-identical to the
    historical STT-LUT path. *)

val tvd : t
(** Threshold-voltage-defined camouflaged cells ({!Sttc_tech.Tvd_lib}):
    near-CMOS delay/area, activity-dependent power, and a per-cell
    keyspace equal to the meaningful-gate family of its fan-in. *)

val all : t list

val find : string -> t option
(** Look a backend up by {!name}. *)

val find_exn : string -> t
(** @raise Invalid_argument on unknown names, listing the known ones. *)

val names : unit -> string list

(** {2 Flow integration helpers} *)

val eval_library : t -> Sttc_tech.Library.t -> Sttc_tech.Library.t
(** The library used to price a hybrid under this backend: same clock,
    the backend's reconfigurable-cell technology. *)

val sat_candidates :
  t ->
  Sttc_netlist.Netlist.t ->
  Sttc_netlist.Netlist.node_id list ->
  (Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t list) list
(** The per-LUT candidate lists for [Sat_attack]'s [~candidates]
    restriction, read off the foundry view's LUT arities.  Empty for an
    unrestricted backend. *)

val pp : Format.formatter -> t -> unit
