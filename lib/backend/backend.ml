module Gate_fn = Sttc_logic.Gate_fn
module Truth = Sttc_logic.Truth
module Lognum = Sttc_util.Lognum

type t = {
  name : string;
  description : string;
  lut_style : Sttc_tech.Library.lut_style;
  cell_noun : string;
  candidates : (int -> Truth.t list) option;
  alpha : int -> float;
  p : int -> float;
  write_energy_fj : float;
  write_time_ns : float;
}

let name t = t.name
let description t = t.description
let restricted t = t.candidates <> None

let candidate_tables t ~arity =
  match t.candidates with None -> None | Some f -> Some (f arity)

let cell_keyspace t ~arity =
  if arity < 1 || arity > Truth.max_arity then
    invalid_arg "Backend.cell_keyspace: arity out of range";
  match t.candidates with
  | None -> Lognum.pow (Lognum.of_int 2) (1 lsl arity)
  | Some f -> Lognum.of_int (List.length (f arity))

let search_space t ~arities =
  List.fold_left
    (fun acc n -> Lognum.mul acc (cell_keyspace t ~arity:n))
    Lognum.one arities

(* ---------- the registry ---------- *)

let stt =
  {
    name = "stt";
    description = "non-volatile STT-MRAM LUTs (the paper's technology)";
    lut_style = Sttc_tech.Library.Stt;
    cell_noun = "MTJ";
    (* a LUT realizes any function of its inputs: no candidate
       restriction, the full 2^2^n keyspace *)
    candidates = None;
    alpha = Gate_fn.paper_alpha;
    p = Gate_fn.paper_p;
    write_energy_fj = Sttc_tech.Stt_lib.write_energy_fj;
    write_time_ns = Sttc_tech.Stt_lib.write_time_ns;
  }

let tvd =
  {
    name = "tvd";
    description = "threshold-voltage-defined camouflaged cells";
    lut_style = Sttc_tech.Library.Tvd;
    cell_noun = "TVD";
    (* one TVD layout realizes exactly the meaningful-gate family of its
       fan-in; the attacker knows the family, only the implant is secret *)
    candidates =
      Some
        (fun n ->
          List.map Gate_fn.truth (Sttc_tech.Tvd_lib.candidate_functions n));
    (* first-principles constants on the candidate family, the same
       derivation as Security.computed_constants *)
    alpha = (fun n -> if n = 1 then 1.5 else Gate_fn.computed_alpha n);
    p = (fun n -> float_of_int (Gate_fn.candidate_count n));
    write_energy_fj = Sttc_tech.Tvd_lib.program_energy_fj;
    write_time_ns = Sttc_tech.Tvd_lib.program_time_ns;
  }

let all = [ stt; tvd ]
let find n = List.find_opt (fun b -> b.name = n) all
let names () = List.map (fun b -> b.name) all

let find_exn n =
  match find n with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "unknown backend %s (expected one of %s)" n
           (String.concat ", " (names ())))

(* ---------- flow integration helpers ---------- *)

let eval_library t library =
  Sttc_tech.Library.with_lut_style library t.lut_style

let sat_candidates t nl luts =
  match t.candidates with
  | None -> []
  | Some f ->
      List.map
        (fun id ->
          match Sttc_netlist.Netlist.kind nl id with
          | Sttc_netlist.Netlist.Lut { arity; _ } -> (id, f arity)
          | _ -> invalid_arg "Backend.sat_candidates: not a LUT node")
        luts

let pp fmt t = Format.fprintf fmt "%s (%s)" t.name t.description
