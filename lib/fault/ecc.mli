(** SECDED Hamming code over one LUT's configuration bits.

    A LUT of arity [a] stores [2^a <= 64] truth-table rows; the
    provisioner can spend a few extra MTJ cells per LUT on an extended
    Hamming code (single-error-correcting, double-error-detecting) so
    that one flipped or unprogrammable cell per LUT is repaired at
    read-out instead of failing the part.

    The codeword layout is the classic one: data bits occupy the
    non-power-of-two positions of a 1-based codeword, parity bit [k]
    (at position [2^k]) covers the positions whose index has bit [k]
    set, and one extra overall-parity bit upgrades detection to double
    errors. *)

val parity_bits : int -> int
(** Number of parity cells (including the overall-parity bit) needed to
    protect [n] data bits.  [parity_bits 4 = 4], [parity_bits 16 = 6],
    [parity_bits 64 = 8].  Raises [Invalid_argument] when [n < 1]. *)

val encode : bool array -> bool array
(** [encode data] is the parity word for [data]
    (length [parity_bits (Array.length data)]). *)

type verdict =
  | Clean  (** data and parity are consistent, nothing to do *)
  | Corrected of bool array
      (** exactly one bit (data or parity) was wrong; the returned array
          is the repaired data *)
  | Uncorrectable
      (** two or more errors detected — the data cannot be trusted *)

val decode : data:bool array -> parity:bool array -> verdict
(** Check (and if possible repair) a stored data/parity pair.  Raises
    [Invalid_argument] when the parity length does not match
    [parity_bits (Array.length data)]. *)
