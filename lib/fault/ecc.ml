(* Extended Hamming (SECDED).  Codeword positions are 1-based; position
   [2^k] holds Hamming parity bit [k], every other position holds the
   next data bit, and an overall-parity bit (position 0 by convention)
   covers the whole codeword. *)

let hamming_bits n =
  let rec go r = if 1 lsl r >= n + r + 1 then r else go (r + 1) in
  go 1

let parity_bits n =
  if n < 1 then invalid_arg "Ecc.parity_bits: need at least one data bit";
  hamming_bits n + 1

let is_pow2 i = i land (i - 1) = 0

(* Codeword as a bool array indexed 1 .. n+r, data filled in position
   order; returns the array and the list of data positions. *)
let codeword data =
  let n = Array.length data in
  let r = hamming_bits n in
  let total = n + r in
  let word = Array.make (total + 1) false in
  let data_pos = Array.make n 0 in
  let d = ref 0 in
  for pos = 1 to total do
    if not (is_pow2 pos) then begin
      word.(pos) <- data.(!d);
      data_pos.(!d) <- pos;
      incr d
    end
  done;
  (word, data_pos, r, total)

let fill_parity word r total =
  for k = 0 to r - 1 do
    let p = 1 lsl k in
    let acc = ref false in
    for pos = 1 to total do
      if pos <> p && pos land p <> 0 && word.(pos) then acc := not !acc
    done;
    word.(p) <- !acc
  done

let encode data =
  let word, _, r, total = codeword data in
  fill_parity word r total;
  let parity = Array.make (r + 1) false in
  for k = 0 to r - 1 do
    parity.(k) <- word.(1 lsl k)
  done;
  (* overall parity over the full codeword *)
  let all = ref false in
  for pos = 1 to total do
    if word.(pos) then all := not !all
  done;
  parity.(r) <- !all;
  parity

type verdict = Clean | Corrected of bool array | Uncorrectable

let decode ~data ~parity =
  let n = Array.length data in
  let r = hamming_bits n in
  if Array.length parity <> r + 1 then
    invalid_arg "Ecc.decode: parity length mismatch";
  let word, data_pos, _, total = codeword data in
  for k = 0 to r - 1 do
    word.(1 lsl k) <- parity.(k)
  done;
  (* syndrome: XOR of the indices of all set positions, computed as the
     per-parity-group checks *)
  let syndrome = ref 0 in
  for k = 0 to r - 1 do
    let p = 1 lsl k in
    let acc = ref false in
    for pos = 1 to total do
      if pos land p <> 0 && word.(pos) then acc := not !acc
    done;
    if !acc then syndrome := !syndrome lor p
  done;
  let overall = ref parity.(r) in
  for pos = 1 to total do
    if word.(pos) then overall := not !overall
  done;
  let odd_weight = !overall in
  if !syndrome = 0 && not odd_weight then Clean
  else if odd_weight then begin
    (* single error: at the syndrome position, or in the overall-parity
       cell itself when the syndrome is zero *)
    if !syndrome = 0 || !syndrome > total then
      (* overall-parity cell flipped (or points outside: treat as a
         parity-cell error) — data is intact *)
      Corrected (Array.copy data)
    else begin
      word.(!syndrome) <- not word.(!syndrome);
      let repaired = Array.init n (fun i -> word.(data_pos.(i))) in
      Corrected repaired
    end
  end
  else Uncorrectable
