(** Stochastic MTJ write-channel model — the device-level reality behind
    {!Sttc_core.Provision}'s programming step.

    Real STT-MRAM writes are probabilistic: the switching current only
    makes the flip {e likely}, a fraction of cells are stuck at their
    as-fabricated state, and raising the write current (at an energy
    cost) lowers the transient error rate.  A {!channel} is a
    deterministic simulation of one die's configuration memory: every
    cell's fate is derived from the channel seed and the cell address
    alone, so two channels with the same seed agree on every cell
    regardless of write order — the property that makes fault-injection
    experiments reproducible.

    Cells are addressed by (LUT instance name, cell index).  Indices
    [0 .. rows-1] hold the truth-table rows; higher indices are used by
    the provisioner for spare rows and ECC parity cells. *)

type spec = {
  write_error_rate : float;
      (** per-attempt probability that the cell fails to switch and
          retains its previous value (transient write failure) *)
  stuck_cell_rate : float;
      (** per-cell probability that the cell is permanently stuck at its
          as-fabricated value — no write ever changes it *)
  escalation_gain : float;
      (** >= 1.  Each escalation step divides the transient error rate
          by this factor and multiplies the write energy by the same
          factor (a higher write current). *)
}

val ideal : spec
(** Error-free writes: every attempt stores the target value. *)

val default_faulty : spec
(** A pessimistic but realistic corner: [write_error_rate = 1e-3],
    [stuck_cell_rate = 0.], [escalation_gain = 10.]. *)

val spec :
  ?write_error_rate:float ->
  ?stuck_cell_rate:float ->
  ?escalation_gain:float ->
  unit ->
  spec
(** {!default_faulty} with overrides.  Raises [Invalid_argument] on rates
    outside [0, 1] or a gain below 1. *)

type channel

val channel : ?seed:int -> spec -> channel
(** A fresh die.  Every cell starts at a deterministic as-fabricated
    value derived from [seed] (default 0) and the cell address. *)

val write :
  channel -> lut:string -> cell:int -> ?escalation:int -> bool -> bool
(** [write ch ~lut ~cell target] attempts to store [target] and returns
    the value the cell actually holds afterwards (the read-back of a
    program-verify cycle).  [escalation] (default 0) selects the write
    current: step [k] divides the transient error rate by
    [escalation_gain ^ k]. *)

val read : channel -> lut:string -> cell:int -> bool
(** Current cell content (as-fabricated value if never written). *)

val is_stuck : channel -> lut:string -> cell:int -> bool
(** Whether the cell is permanently stuck (diagnosis, not part of the
    attacker-visible interface). *)

val attempts : channel -> int
(** Total write attempts issued so far. *)

val energy_units : channel -> float
(** Sum over attempts of [escalation_gain ^ escalation] — the write
    energy spent, in units of one nominal-current MTJ write. *)

val verify_reads : channel -> int
(** Read-backs performed ({!write} counts one per attempt, {!read} one
    per call). *)
