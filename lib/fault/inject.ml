module Netlist = Sttc_netlist.Netlist
module Truth = Sttc_logic.Truth
module Rng = Sttc_util.Rng

let flip_row config row =
  let s = Bytes.of_string (Truth.to_string config) in
  Bytes.set s row (if Bytes.get s row = '0' then '1' else '0');
  Truth.of_string (Bytes.to_string s)

let retention_flips ~rng ~rate nl =
  if not (rate >= 0. && rate <= 1.) then
    invalid_arg "Inject.retention_flips: rate outside [0,1]";
  let flipped = ref [] in
  let faulty =
    Netlist.with_kinds nl (fun id kind fanins ->
        match kind with
        | Netlist.Lut { arity; config = Some c } ->
            let c = ref c in
            for row = 0 to Truth.rows !c - 1 do
              if rate > 0. && Rng.float rng 1.0 < rate then begin
                c := flip_row !c row;
                flipped := (Netlist.name nl id, row) :: !flipped
              end
            done;
            (Netlist.Lut { arity; config = Some !c }, fanins)
        | k -> (k, fanins))
  in
  (faulty, List.rev !flipped)

let stuck_at nl ~net v =
  match Netlist.find nl net with
  | None -> invalid_arg ("Inject.stuck_at: no net named " ^ net)
  | Some id -> (
      match Netlist.kind nl id with
      | Netlist.Dff ->
          invalid_arg ("Inject.stuck_at: " ^ net ^ " is a flip-flop output")
      | _ ->
          Netlist.with_kinds nl (fun id' kind fanins ->
              if id' = id then (Netlist.Const v, [||]) else (kind, fanins)))

let random_stuck_ats ~rng ~count nl =
  let gates = Array.of_list (Netlist.gates nl) in
  let picks = Rng.sample rng count gates in
  Array.fold_left
    (fun (nl, log) id ->
      let net = Netlist.name nl id in
      let v = Rng.bool rng in
      (stuck_at nl ~net v, (net, v) :: log))
    (nl, []) picks
  |> fun (nl, log) -> (nl, List.rev log)

let corrupt_bitstream ~rng ?(char_flips = 4) ?truncate_at text =
  let b = Bytes.of_string text in
  let n = Bytes.length b in
  if n > 0 then
    for _ = 1 to char_flips do
      let i = Rng.int rng n in
      (* printable ASCII plus the separators the parser cares about *)
      let repl = [| ' '; '\t'; '\r'; '\n'; '0'; '1'; '2'; 'x'; '#'; '_' |] in
      Bytes.set b i (Rng.pick rng repl)
    done;
  let s = Bytes.to_string b in
  match truncate_at with
  | Some k when k < String.length s -> String.sub s 0 (max 0 k)
  | _ -> s
