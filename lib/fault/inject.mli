(** Design-level fault injection: what can go wrong {e after} (or
    around) programming.

    Three fault classes, all deterministic under an explicit
    {!Sttc_util.Rng.t} so experiments are reproducible:

    - {e retention flips}: thermal upsets of already-programmed LUT
      configuration bits (the non-volatility of STT-MRAM is a retention
      {e time}, not an absolute),
    - {e stuck-at faults}: a net tied to a constant — the classic
      manufacturing-defect model, applied to the hybrid's nets,
    - {e bitstream corruption}: the configuration file mangled in
      transit (bit flips in the text, truncation) — the input the
      hardened {!Sttc_core.Provision.parse} must survive. *)

val retention_flips :
  rng:Sttc_util.Rng.t ->
  rate:float ->
  Sttc_netlist.Netlist.t ->
  Sttc_netlist.Netlist.t * (string * int) list
(** Flip each configuration bit of each programmed LUT independently
    with probability [rate].  Returns the faulty netlist and the flipped
    (LUT name, row) pairs.  Unprogrammed LUTs and non-LUT nodes are
    untouched.  Raises [Invalid_argument] when [rate] is outside
    [0, 1]. *)

val stuck_at :
  Sttc_netlist.Netlist.t -> net:string -> bool -> Sttc_netlist.Netlist.t
(** [stuck_at nl ~net v] ties the named net to the constant [v]: the
    driver node becomes a [Const] and its fanin cone is left to the
    dead-logic sweep.  Raises [Invalid_argument] when no node drives a
    net of that name or the node is a flip-flop (sequential stuck-ats
    need the scan model, not a combinational rewrite). *)

val random_stuck_ats :
  rng:Sttc_util.Rng.t ->
  count:int ->
  Sttc_netlist.Netlist.t ->
  Sttc_netlist.Netlist.t * (string * bool) list
(** [count] distinct gate-output nets tied to random constants. *)

val corrupt_bitstream :
  rng:Sttc_util.Rng.t ->
  ?char_flips:int ->
  ?truncate_at:int ->
  string ->
  string
(** Mangle a bitstream text: [char_flips] (default 4) random characters
    are overwritten with random printable bytes, then the text is cut at
    [truncate_at] bytes if given.  The result is {e syntactically}
    arbitrary — it may still parse, parse to different entries, or make
    {!Sttc_core.Provision.parse} raise; the contract under test is that
    it never escapes as anything but a labelled [Failure]. *)
