module Rng = Sttc_util.Rng

type spec = {
  write_error_rate : float;
  stuck_cell_rate : float;
  escalation_gain : float;
}

let ideal =
  { write_error_rate = 0.; stuck_cell_rate = 0.; escalation_gain = 10. }

let default_faulty =
  { write_error_rate = 1e-3; stuck_cell_rate = 0.; escalation_gain = 10. }

let spec ?(write_error_rate = default_faulty.write_error_rate)
    ?(stuck_cell_rate = default_faulty.stuck_cell_rate)
    ?(escalation_gain = default_faulty.escalation_gain) () =
  let rate name r =
    if not (r >= 0. && r <= 1.) then
      invalid_arg (Printf.sprintf "Mtj.spec: %s %g outside [0,1]" name r)
  in
  rate "write_error_rate" write_error_rate;
  rate "stuck_cell_rate" stuck_cell_rate;
  if not (escalation_gain >= 1.) then
    invalid_arg "Mtj.spec: escalation_gain must be >= 1";
  { write_error_rate; stuck_cell_rate; escalation_gain }

type cell_state = {
  stuck : bool;
  mutable value : bool;
  rng : Rng.t;  (** per-cell stream for transient write outcomes *)
}

type channel = {
  spec : spec;
  seed : int;
  cells : (string * int, cell_state) Hashtbl.t;
  mutable attempts : int;
  mutable energy_units : float;
  mutable verify_reads : int;
}

let channel ?(seed = 0) spec =
  { spec; seed; cells = Hashtbl.create 256; attempts = 0; energy_units = 0.;
    verify_reads = 0 }

(* The cell's entire fate (as-fabricated value, stuckness, and the stream
   of transient write outcomes) depends only on the channel seed and the
   cell address, never on how many other cells were touched first. *)
let cell_state ch ~lut ~cell =
  let key = (lut, cell) in
  match Hashtbl.find_opt ch.cells key with
  | Some s -> s
  | None ->
      let rng = Rng.make (ch.seed lxor Hashtbl.hash key lxor 0x5177c) in
      let value = Rng.bool rng in
      let stuck = Rng.float rng 1.0 < ch.spec.stuck_cell_rate in
      let s = { stuck; value; rng } in
      Hashtbl.add ch.cells key s;
      s

let write ch ~lut ~cell ?(escalation = 0) target =
  let s = cell_state ch ~lut ~cell in
  ch.attempts <- ch.attempts + 1;
  ch.verify_reads <- ch.verify_reads + 1;
  ch.energy_units <-
    ch.energy_units +. (ch.spec.escalation_gain ** float_of_int escalation);
  if not s.stuck then begin
    let rate =
      ch.spec.write_error_rate
      /. (ch.spec.escalation_gain ** float_of_int escalation)
    in
    let fails = rate > 0. && Rng.float s.rng 1.0 < rate in
    if not fails then s.value <- target
  end;
  s.value

let read ch ~lut ~cell =
  ch.verify_reads <- ch.verify_reads + 1;
  (cell_state ch ~lut ~cell).value

let is_stuck ch ~lut ~cell = (cell_state ch ~lut ~cell).stuck
let attempts ch = ch.attempts
let energy_units ch = ch.energy_units
let verify_reads ch = ch.verify_reads
