(** Cell-area accounting and the Table I area-overhead metric. *)

type report = {
  total_um2 : float;
  gates_um2 : float;
  luts_um2 : float;
  dffs_um2 : float;
}

val estimate : Sttc_tech.Library.t -> Sttc_netlist.Netlist.t -> report

val overhead_pct : base:report -> modified:report -> float

val pp_report : Format.formatter -> report -> unit
