module Netlist = Sttc_netlist.Netlist
module Rng = Sttc_util.Rng

type io_path = {
  nodes : Netlist.node_id list;
  ff_count : int;
}

type segment = {
  gates : Netlist.node_id list;
  launches_at_ff : bool;
  captures_at_ff : bool;
}

let is_po_driver nl =
  let set = Hashtbl.create 32 in
  List.iter (fun id -> Hashtbl.replace set id ()) (Netlist.pos nl);
  fun id -> Hashtbl.mem set id

(* Random backward walk from [start] to a primary input.  Returns the node
   list PI..start (inclusive).  Walks through flip-flops (sequential
   edges), failing on revisits to avoid looping in FF cycles. *)
let walk_back ~rng nl start =
  let visited = Hashtbl.create 64 in
  let rec go id acc =
    if Hashtbl.mem visited id then None
    else begin
      Hashtbl.add visited id ();
      let acc = id :: acc in
      match Netlist.kind nl id with
      | Netlist.Pi -> Some acc
      | Netlist.Const _ -> None
      | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dff ->
          let fanins = Netlist.fanins nl id in
          if Array.length fanins = 0 then None
          else go (Rng.pick rng fanins) acc
    end
  in
  go start []

(* Random forward walk from [start] to a primary-output driver.  Returns
   the node list start..PO-driver (inclusive). *)
let walk_fwd ~rng nl ~po_driver start =
  let visited = Hashtbl.create 64 in
  let rec go id acc =
    if Hashtbl.mem visited id then None
    else begin
      Hashtbl.add visited id ();
      let acc = id :: acc in
      if po_driver id then Some (List.rev acc)
      else
        match Netlist.fanouts nl id with
        | [] -> None
        | outs -> go (Rng.pick_list rng outs) acc
    end
  in
  go start []

let count_ffs nl nodes =
  List.fold_left
    (fun acc id ->
      match Netlist.kind nl id with Netlist.Dff -> acc + 1 | _ -> acc)
    0 nodes

(* [po_driver] is hoisted to the caller: building the PO-driver set is
   O(#POs), and [sample] calls this once per sampled component — paying
   it per call made sampling quadratic on the 10^5..10^6-gate scale
   families. *)
let find_io_path_with ~rng ~po_driver nl start =
  (* Several random walks; keep the flip-flop-richest path found, since the
     selection procedure wants paths "containing at least two flip-flops". *)
  let attempts = 8 in
  let best = ref None in
  for _ = 1 to attempts do
    match walk_back ~rng nl start with
    | None -> ()
    | Some back -> (
        match walk_fwd ~rng nl ~po_driver start with
        | None -> ()
        | Some fwd ->
            (* [back] ends with start; [fwd] begins with start *)
            let nodes = back @ List.tl fwd in
            let candidate = { nodes; ff_count = count_ffs nl nodes } in
            (match !best with
            | Some b when b.ff_count >= candidate.ff_count -> ()
            | _ -> best := Some candidate))
  done;
  !best

let find_io_path ~rng nl start =
  find_io_path_with ~rng ~po_driver:(is_po_driver nl) nl start

let path_key nodes = String.concat "," (List.map string_of_int nodes)

let sample ~rng ?(fraction = 0.02) ?(min_ffs = 2) ?(exclude_critical = []) nl =
  if fraction <= 0. || fraction > 1. then invalid_arg "Paths.sample: fraction";
  let components = Array.of_list (Netlist.gates nl @ Netlist.luts nl) in
  if Array.length components = 0 then []
  else begin
    let count =
      max 8 (int_of_float (fraction *. float_of_int (Array.length components)))
    in
    let picked = Rng.sample rng count components in
    let po_driver = is_po_driver nl in
    let seen = Hashtbl.create 64 in
    let paths = ref [] in
    Array.iter
      (fun id ->
        match find_io_path_with ~rng ~po_driver nl id with
        | None -> ()
        | Some p ->
            let key = path_key p.nodes in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              paths := p :: !paths
            end)
      picked;
    let all = !paths in
    (* Keep paths with >= min_ffs flip-flops, relaxing when none qualify
       (small or shallow circuits). *)
    let rec select need =
      let kept = List.filter (fun p -> p.ff_count >= need) all in
      if kept <> [] || need = 0 then kept else select (need - 1)
    in
    let kept = select min_ffs in
    (* Drop paths touching the critical path.  Preferred: exclude any path
       sharing a node with it (keeps selection on slack-rich logic).  If
       that empties the pool (tiny circuits where everything overlaps),
       fall back to the literal reading — only paths containing the whole
       critical path are dropped. *)
    let module Int_set = Set.Make (Int) in
    let crit = Int_set.of_list exclude_critical in
    let kept =
      if Int_set.is_empty crit then kept
      else begin
        let disjoint =
          List.filter
            (fun p ->
              not (List.exists (fun id -> Int_set.mem id crit) p.nodes))
            kept
        in
        if disjoint <> [] then disjoint
        else
          List.filter
            (fun p -> not (Int_set.subset crit (Int_set.of_list p.nodes)))
            kept
      end
    in
    (* Longest path = most flip-flops (the paper's depth); ties prefer the
       path with fewer nodes, i.e. the densest sequential chain. *)
    List.sort
      (fun a b ->
        match Int.compare b.ff_count a.ff_count with
        | 0 -> Int.compare (List.length a.nodes) (List.length b.nodes)
        | c -> c)
      kept
  end

let segments nl path =
  (* Split at flip-flops; PIs/PO drivers bound the first/last segment. *)
  let flush acc_gates ~launch ~capture segs =
    match acc_gates with
    | [] -> segs
    | _ ->
        { gates = List.rev acc_gates; launches_at_ff = launch; captures_at_ff = capture }
        :: segs
  in
  let rec go nodes launch acc_gates segs =
    match nodes with
    | [] -> List.rev (flush acc_gates ~launch ~capture:false segs)
    | id :: rest -> (
        match Netlist.kind nl id with
        | Netlist.Dff ->
            let segs = flush acc_gates ~launch ~capture:true segs in
            go rest true [] segs
        | Netlist.Pi | Netlist.Const _ -> go rest launch acc_gates segs
        | Netlist.Gate _ | Netlist.Lut _ -> go rest launch (id :: acc_gates) segs)
  in
  go path.nodes false [] []

let gates_on_path nl path =
  List.filter
    (fun id -> Netlist.is_combinational (Netlist.kind nl id))
    path.nodes
