(** Static timing analysis.

    Sequential model: primary inputs and constant drivers launch at time
    0; flip-flop outputs launch at the cell's clk-to-q delay; a
    combinational node's arrival is the worst fanin arrival plus its cell
    delay.  Endpoints are flip-flop D-inputs and primary-output drivers.
    The critical path delay is the worst endpoint arrival — the quantity
    whose relative increase is the paper's "performance degradation". *)

type t

val analyze : Sttc_tech.Library.t -> Sttc_netlist.Netlist.t -> t

val arrival_ps : t -> Sttc_netlist.Netlist.node_id -> float
(** Worst-case arrival time at the node's output. *)

val critical_delay_ps : t -> float
(** Worst endpoint arrival = minimum usable clock period (ps). *)

val critical_path : t -> Sttc_netlist.Netlist.node_id list
(** One worst path, launch point first, endpoint last (combinational
    segment only: the nodes between, and including, the launching source
    and the endpoint). *)

val critical_endpoint : t -> Sttc_netlist.Netlist.node_id
val max_frequency_ghz : t -> float

val slack_ps : t -> clock_ps:float -> float
(** [clock_ps - critical_delay_ps]; negative when timing is violated. *)

val endpoint_arrivals : t -> (Sttc_netlist.Netlist.node_id * float) list
(** All endpoints with their arrival times, worst first. *)

val worst_paths : t -> k:int -> (float * Sttc_netlist.Netlist.node_id list) list
(** The [k] worst endpoints, each with its arrival time and one worst path
    (launch point first). *)

val report : ?k:int -> t -> string
(** Human-readable timing report: critical delay, max frequency, and the
    [k] (default 3) worst paths with per-node arrivals. *)
