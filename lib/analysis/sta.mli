(** Static timing analysis.

    Sequential model: primary inputs and constant drivers launch at time
    0; flip-flop outputs launch at the cell's clk-to-q delay; a
    combinational node's arrival is the worst fanin arrival plus its cell
    delay.  Endpoints are flip-flop D-inputs and primary-output drivers.
    The critical path delay is the worst endpoint arrival — the quantity
    whose relative increase is the paper's "performance degradation". *)

type t

val analyze : Sttc_tech.Library.t -> Sttc_netlist.Netlist.t -> t

val netlist : t -> Sttc_netlist.Netlist.t
(** The netlist this analysis was computed on. *)

val arrival_ps : t -> Sttc_netlist.Netlist.node_id -> float
(** Worst-case arrival time at the node's output. *)

val critical_delay_ps : t -> float
(** Worst endpoint arrival = minimum usable clock period (ps). *)

val critical_path : t -> Sttc_netlist.Netlist.node_id list
(** One worst path, launch point first, endpoint last (combinational
    segment only: the nodes between, and including, the launching source
    and the endpoint). *)

val critical_endpoint : t -> Sttc_netlist.Netlist.node_id
val max_frequency_ghz : t -> float

val slack_ps : t -> clock_ps:float -> float
(** [clock_ps - critical_delay_ps]; negative when timing is violated. *)

val endpoint_arrivals : t -> (Sttc_netlist.Netlist.node_id * float) list
(** All endpoints with their arrival times, worst first. *)

val worst_paths : t -> k:int -> (float * Sttc_netlist.Netlist.node_id list) list
(** The [k] worst endpoints, each with its arrival time and one worst path
    (launch point first). *)

val report : ?k:int -> t -> string
(** Human-readable timing report: critical delay, max frequency, and the
    [k] (default 3) worst paths with per-node arrivals. *)

(** {1 Incremental re-analysis}

    [retime] and the trial engine recompute arrivals only over the forward
    cone of changed nodes, using the exact per-node arithmetic of
    {!analyze} so results are bit-identical to a from-scratch analysis. *)

val retime :
  Sttc_tech.Library.t ->
  t ->
  Sttc_netlist.Netlist.t ->
  changed:Sttc_netlist.Netlist.node_id list ->
  t
(** [retime lib t nl ~changed] is [analyze lib nl], computed incrementally
    when [nl] is id-compatible with [t]'s netlist
    ({!Sttc_netlist.Netlist.kind_delta}): arrivals are re-propagated only
    over the forward cone of the kind delta plus [changed], and the
    endpoint ranking is repaired in place.  Falls back to a full
    {!analyze} (counter [sta.retime.full]) otherwise; the cone path bumps
    [sta.retime.cone] and records the visited-node count under
    [sta.retime.cone_nodes]. *)

type trial
(** A reusable scratch workspace over a base analysis for evaluating
    speculative kind changes (e.g. gate→LUT candidate sets) without
    copying the netlist or the arrival array per candidate.  Each query
    propagates through the touched cone, reads the worst endpoint off a
    lazily-repaired heap, then undoes its writes — the workspace is ready
    for the next candidate immediately.  Not thread-safe. *)

val trial : Sttc_tech.Library.t -> t -> trial

val trial_delay_ps :
  trial ->
  kind_of:(Sttc_netlist.Netlist.node_id -> Sttc_netlist.Netlist.kind) ->
  Sttc_netlist.Netlist.node_id list ->
  float
(** [trial_delay_ps tr ~kind_of changed] is the critical delay the base
    netlist would have if every node's kind were [kind_of id] — structure
    (fanins) must be unchanged; only the kinds of [changed] nodes may
    differ from the base.  Equals
    [critical_delay_ps (analyze lib modified_netlist)] exactly. *)

val trial_critical :
  trial ->
  kind_of:(Sttc_netlist.Netlist.node_id -> Sttc_netlist.Netlist.kind) ->
  Sttc_netlist.Netlist.node_id list ->
  float * Sttc_netlist.Netlist.node_id list
(** Like {!trial_delay_ps} but also returns the worst path (launch point
    first, endpoint last), matching {!critical_path} on the modified
    netlist exactly. *)

(** {2 Persistent sessions}

    A selection loop evaluates a slowly-mutating replacement set: each
    candidate differs from the previous one by a handful of gates while
    the accumulated set grows into the hundreds.  Re-applying the whole
    set per query makes every evaluation pay the union cone;
    [trial_advance] instead moves the trial's state {e permanently} by
    just the delta, so per-query cost tracks the delta cone.  The caller
    owns the set bookkeeping: [kind_of] must describe the complete
    current speculative view, and [seeds] every node whose kind changed
    since the previous call.  One-shot queries ({!trial_delay_ps},
    {!trial_critical}) remain usable mid-session and are then relative
    to the advanced state. *)

val trial_advance :
  trial ->
  kind_of:(Sttc_netlist.Netlist.node_id -> Sttc_netlist.Netlist.kind) ->
  Sttc_netlist.Netlist.node_id list ->
  int
(** Re-propagate arrivals over the forward cone of [seeds] and keep the
    result (no undo).  Returns the cone size; bumps [sta.retime.cone]
    and records [sta.retime.cone_nodes]. *)

val trial_current_delay_ps : trial -> float
(** Critical delay of the session's current speculative view — equals
    [critical_delay_ps (analyze lib current_netlist)] exactly. *)

val trial_current_critical : trial -> float * Sttc_netlist.Netlist.node_id list
(** Current delay plus one worst path, matching {!critical_path} on the
    current speculative view exactly. *)
