(** Power estimation for pure-CMOS and hybrid STT-CMOS netlists.

    CMOS gates and flip-flops burn [activity * E_sw * f] dynamic power plus
    leakage; STT LUTs burn their pre-charge energy every cycle regardless
    of data activity (their defining property, Section III) plus a
    near-zero standby term.  The paper's Table I "power overhead %" is the
    relative difference of two such estimates. *)

type report = {
  dynamic_uw : float;
  leakage_uw : float;
  total_uw : float;
  cmos_uw : float;  (** gates + flip-flops *)
  stt_uw : float;  (** LUT slots *)
  avg_switching : float;
}

val estimate :
  ?activity:Activity.t ->
  Sttc_tech.Library.t ->
  Sttc_netlist.Netlist.t ->
  report
(** When [activity] is omitted it is computed with default PI
    probabilities. *)

val node_power_uw :
  Sttc_tech.Library.t ->
  Activity.t ->
  Sttc_netlist.Netlist.t ->
  Sttc_netlist.Netlist.node_id ->
  float
(** Per-node contribution (0 for PIs and constants). *)

val overhead_pct : base:report -> modified:report -> float
(** Total-power overhead percentage, Table I style. *)

val pp_report : Format.formatter -> report -> unit
