module Netlist = Sttc_netlist.Netlist
module Library = Sttc_tech.Library
module Cell = Sttc_tech.Cell

type report = {
  dynamic_uw : float;
  leakage_uw : float;
  total_uw : float;
  cmos_uw : float;
  stt_uw : float;
  avg_switching : float;
}

let node_power_uw lib act nl id =
  match Library.cell_of_kind lib (Netlist.kind nl id) with
  | None -> 0.
  | Some cell ->
      let activity = Activity.switching act id in
      Cell.total_power_uw cell ~activity ~clock_ghz:(Library.clock_ghz lib)

let estimate ?activity lib nl =
  let act =
    match activity with Some a -> a | None -> Activity.analyze nl
  in
  let clock_ghz = Library.clock_ghz lib in
  let dynamic = ref 0. and leakage = ref 0. in
  let cmos = ref 0. and stt = ref 0. in
  Netlist.iter
    (fun id node ->
      match Library.cell_of_kind lib node.Netlist.kind with
      | None -> ()
      | Some cell ->
          let a = Activity.switching act id in
          let dyn = Cell.dynamic_power_uw cell ~activity:a ~clock_ghz in
          let leak = cell.Cell.leakage_nw /. 1000. in
          dynamic := !dynamic +. dyn;
          leakage := !leakage +. leak;
          let total = dyn +. leak in
          (* the reconfigurable bucket, whatever the backend technology *)
          (match cell.Cell.style with
          | Cell.Stt_lut | Cell.Tvd -> stt := !stt +. total
          | Cell.Cmos | Cell.Sequential -> cmos := !cmos +. total))
    nl;
  {
    dynamic_uw = !dynamic;
    leakage_uw = !leakage;
    total_uw = !dynamic +. !leakage;
    cmos_uw = !cmos;
    stt_uw = !stt;
    avg_switching = Activity.average_switching act;
  }

let overhead_pct ~base ~modified =
  Sttc_util.Stats.relative_overhead ~base:base.total_uw ~modified:modified.total_uw

let pp_report fmt r =
  Format.fprintf fmt
    "power: %.2f uW total (%.2f dynamic, %.2f leakage; CMOS %.2f, STT %.2f; avg alpha %.3f)"
    r.total_uw r.dynamic_uw r.leakage_uw r.cmos_uw r.stt_uw r.avg_switching
