(** I/O path sampling — the procedure at the end of Section IV-A.

    The paper's selection algorithms operate on "the longest I/O paths":
    paths from a primary input to a primary output that cross at least two
    flip-flops.  For scalability the paper samples 2 % of the circuit's
    components, DFS-walks each sample backward to a primary input and
    forward to a primary output, deduplicates the collected paths, drops
    any path containing the critical (timing) path, and sorts the rest by
    depth (number of flip-flops crossed).

    A path is stored as the ordered node list from PI to PO; its
    {e timing paths} are the combinational segments between consecutive
    sequential endpoints (PI-to-FF, FF-to-FF, FF-to-PO). *)

type io_path = {
  nodes : Sttc_netlist.Netlist.node_id list;  (** PI first, PO driver last *)
  ff_count : int;  (** the paper's path depth [D] *)
}

type segment = {
  gates : Sttc_netlist.Netlist.node_id list;
      (** combinational nodes of the segment, in path order *)
  launches_at_ff : bool;
  captures_at_ff : bool;
}

val sample :
  rng:Sttc_util.Rng.t ->
  ?fraction:float ->
  ?min_ffs:int ->
  ?exclude_critical:Sttc_netlist.Netlist.node_id list ->
  Sttc_netlist.Netlist.t ->
  io_path list
(** [sample ~rng nl] follows the paper: samples [fraction] (default 0.02,
    but at least 8) of the combinational components, finds an I/O path
    through each, keeps paths with at least [min_ffs] (default 2)
    flip-flops — relaxing the requirement stepwise when the circuit has no
    such path — removes duplicates and any path containing all of
    [exclude_critical], and returns the rest sorted by descending
    [ff_count] (longest first). *)

val segments : Sttc_netlist.Netlist.t -> io_path -> segment list
(** Cut an I/O path at its flip-flops. *)

val gates_on_path : Sttc_netlist.Netlist.t -> io_path -> Sttc_netlist.Netlist.node_id list
(** The replaceable (combinational gate) nodes of a path. *)

val find_io_path :
  rng:Sttc_util.Rng.t ->
  Sttc_netlist.Netlist.t ->
  Sttc_netlist.Netlist.node_id ->
  io_path option
(** One random-walk I/O path through the given node ([None] if the node
    reaches no PI or no PO within the attempt budget). *)
