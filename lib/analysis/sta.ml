module Netlist = Sttc_netlist.Netlist
module Library = Sttc_tech.Library
module Metrics = Sttc_obs.Metrics

type t = {
  netlist : Netlist.t;
  arrival : float array;
  endpoints : (Netlist.node_id * float) list; (* worst first *)
  critical_end : Netlist.node_id;
  critical : float;
  endpoint_ids : Netlist.node_id array; (* ascending, deduplicated *)
}

(* Worst endpoint first; exact-tie arrivals break towards the smaller node
   id so full and incremental analyses agree bit for bit. *)
let compare_endpoints (ia, a) (ib, b) =
  match Float.compare b a with 0 -> Int.compare ia ib | c -> c

let endpoint_ids_of nl =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ff -> Hashtbl.replace tbl (Netlist.fanins nl ff).(0) ())
    (Netlist.dffs nl);
  List.iter (fun po -> Hashtbl.replace tbl po ()) (Netlist.pos nl);
  let ids = Array.of_list (Hashtbl.fold (fun id () acc -> id :: acc) tbl []) in
  Array.sort Int.compare ids;
  ids

(* A node's output arrival given the arrivals of its fanins — the one
   arithmetic shared by [analyze], [retime] and the trial engine, so the
   incremental paths reproduce the from-scratch floats exactly. *)
let node_arrival lib nl arrival id kind =
  match kind with
  | Netlist.Pi | Netlist.Const _ -> 0.
  | Netlist.Dff ->
      (* launch at clk-to-q; the D-input arrival is an endpoint, not part
         of this node's output arrival *)
      (Library.dff_cell lib).Sttc_tech.Cell.delay_ps
  | Netlist.Gate _ | Netlist.Lut _ ->
      let worst = ref 0. in
      Array.iter
        (fun src -> if arrival.(src) > !worst then worst := arrival.(src))
        (Netlist.fanins nl id);
      !worst +. Library.node_delay_ps lib kind

let finish nl arrival endpoint_ids =
  let endpoints =
    Array.to_list endpoint_ids
    |> List.map (fun id -> (id, arrival.(id)))
    |> List.sort compare_endpoints
  in
  let critical_end, critical =
    match endpoints with
    | [] -> invalid_arg "Sta.analyze: netlist has no endpoints"
    | (id, a) :: _ -> (id, a)
  in
  { netlist = nl; arrival; endpoints; critical_end; critical; endpoint_ids }

let analyze lib nl =
  let n = Netlist.node_count nl in
  let arrival = Array.make n 0. in
  Array.iter
    (fun id -> arrival.(id) <- node_arrival lib nl arrival id (Netlist.kind nl id))
    (Netlist.topo_order nl);
  finish nl arrival (endpoint_ids_of nl)

let netlist t = t.netlist

let arrival_ps t id =
  if id < 0 || id >= Array.length t.arrival then invalid_arg "Sta.arrival_ps";
  t.arrival.(id)

let critical_delay_ps t = t.critical
let critical_endpoint t = t.critical_end

(* Walk backward from an endpoint through the fanin with the worst
   arrival until a source is reached. *)
let path_to_arrivals nl arrival endpoint =
  let rec go id acc =
    let acc = id :: acc in
    if Netlist.is_combinational (Netlist.kind nl id) then begin
      let fanins = Netlist.fanins nl id in
      let best = ref fanins.(0) in
      Array.iter
        (fun src -> if arrival.(src) > arrival.(!best) then best := src)
        fanins;
      go !best acc
    end
    else acc
  in
  go endpoint []

let path_to t endpoint = path_to_arrivals t.netlist t.arrival endpoint
let critical_path t = path_to t t.critical_end

let max_frequency_ghz t =
  if t.critical <= 0. then infinity else 1000. /. t.critical

let slack_ps t ~clock_ps = clock_ps -. t.critical
let endpoint_arrivals t = t.endpoints

let worst_paths t ~k =
  List.filteri (fun i _ -> i < k) t.endpoints
  |> List.map (fun (endpoint, arrival) -> (arrival, path_to t endpoint))

let report ?(k = 3) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "critical delay %.1f ps (max %.3f GHz), %d endpoints\n"
       t.critical (max_frequency_ghz t) (List.length t.endpoints));
  List.iteri
    (fun i (arrival, path) ->
      Buffer.add_string buf (Printf.sprintf "path %d (%.1f ps): " (i + 1) arrival);
      Buffer.add_string buf
        (String.concat " -> "
           (List.map
              (fun id ->
                Printf.sprintf "%s@%.0f" (Netlist.name t.netlist id)
                  t.arrival.(id))
              path));
      Buffer.add_char buf '\n')
    (worst_paths t ~k);
  Buffer.contents buf

(* ---------- the incremental engine ---------- *)

(* Worklist: a binary min-heap of node ids keyed by topological position.
   Popping in topo order guarantees every fanin of a popped node is final,
   so each cone node is recomputed at most once per propagation. *)
module Work = struct
  type h = {
    pos : int array; (* topo position of every node *)
    mutable heap : int array;
    mutable len : int;
  }

  let create pos = { pos; heap = Array.make 64 0; len = 0 }

  let push h id =
    if h.len = Array.length h.heap then begin
      let bigger = Array.make (2 * h.len) 0 in
      Array.blit h.heap 0 bigger 0 h.len;
      h.heap <- bigger
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    while
      !i > 0 && h.pos.(h.heap.(((!i - 1) / 2))) > h.pos.(id)
    do
      h.heap.(!i) <- h.heap.((!i - 1) / 2);
      i := (!i - 1) / 2
    done;
    h.heap.(!i) <- id

  let pop h =
    let top = h.heap.(0) in
    h.len <- h.len - 1;
    let last = h.heap.(h.len) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      h.heap.(!i) <- last;
      if l < h.len && h.pos.(h.heap.(l)) < h.pos.(h.heap.(!smallest)) then
        smallest := l;
      if r < h.len && h.pos.(h.heap.(r)) < h.pos.(h.heap.(!smallest)) then
        smallest := r;
      if !smallest = !i then continue := false
      else begin
        h.heap.(!i) <- h.heap.(!smallest);
        i := !smallest
      end
    done;
    top
end

let positions_of nl =
  let pos = Array.make (Netlist.node_count nl) 0 in
  Array.iteri (fun i id -> pos.(id) <- i) (Netlist.topo_order nl);
  pos

(* Recompute arrivals over the forward cone of [seeds], reading kinds
   through [kind_of] and structure (fanins, fanouts, Dff-ness) from the
   id-compatible [nl].  [on_change id old] is called before each arrival
   write.  Returns the number of cone nodes popped. *)
let propagate lib nl arrival work queued ~kind_of ~on_change seeds =
  let n = Array.length arrival in
  List.iter
    (fun id ->
      if id < 0 || id >= n then invalid_arg "Sta: node id out of range";
      if not queued.(id) then begin
        queued.(id) <- true;
        Work.push work id
      end)
    seeds;
  let cone = ref 0 in
  while work.Work.len > 0 do
    let id = Work.pop work in
    queued.(id) <- false;
    incr cone;
    let a = node_arrival lib nl arrival id (kind_of id) in
    if a <> arrival.(id) then begin
      on_change id arrival.(id);
      arrival.(id) <- a;
      List.iter
        (fun out ->
          (* a flip-flop's output arrival is independent of its D input:
             sequential edges never propagate *)
          match Netlist.kind nl out with
          | Netlist.Dff -> ()
          | _ ->
              if not queued.(out) then begin
                queued.(out) <- true;
                Work.push work out
              end)
        (Netlist.fanouts nl id)
    end
  done;
  !cone

let retime lib t nl ~changed =
  match Netlist.kind_delta t.netlist nl with
  | None ->
      (* structurally different: the cached cone machinery does not apply *)
      Metrics.incr "sta.retime.full";
      analyze lib nl
  | Some delta ->
      let arrival = Array.copy t.arrival in
      let work = Work.create (positions_of t.netlist) in
      let queued = Array.make (Array.length arrival) false in
      let cone =
        propagate lib t.netlist arrival work queued
          ~kind_of:(fun id -> Netlist.kind nl id)
          ~on_change:(fun _ _ -> ())
          (List.rev_append delta changed)
      in
      Metrics.incr "sta.retime.cone";
      Metrics.observe "sta.retime.cone_nodes" (float_of_int cone);
      finish nl arrival t.endpoint_ids

(* ---------- speculative trials ---------- *)

type trial = {
  lib : Library.t;
  base : t;
  arr : float array;
  (* the current speculative arrivals: equal to [base.arrival] between
     one-shot calls (undo restores it), or reflecting the accumulated
     [trial_advance] deltas in a persistent session *)
  work : Work.h;
  queued : bool array;
  is_endpoint : bool array;
  (* undo log of (id, previous arrival) in write order *)
  mutable undo_ids : int array;
  mutable undo_vals : float array;
  mutable undo_len : int;
  (* lazy-deletion max-heap over endpoint (arrival, id); an entry is valid
     iff it matches the endpoint's current arrival.  Every endpoint update
     (including undo restores) pushes, so the best valid entry is always
     present. *)
  mutable ep_val : float array;
  mutable ep_id : int array;
  mutable ep_len : int;
}

(* max-heap order: higher arrival first, ties to the smaller id —
   mirrors [compare_endpoints]. *)
let ep_before v1 i1 v2 i2 = v1 > v2 || (v1 = v2 && i1 < i2)

let ep_push tr v id =
  if tr.ep_len = Array.length tr.ep_val then begin
    let grow a z =
      let b = Array.make (2 * Array.length a) z in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    tr.ep_val <- grow tr.ep_val 0.;
    tr.ep_id <- grow tr.ep_id 0
  end;
  let i = ref tr.ep_len in
  tr.ep_len <- tr.ep_len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if ep_before v id tr.ep_val.(p) tr.ep_id.(p) then begin
      tr.ep_val.(!i) <- tr.ep_val.(p);
      tr.ep_id.(!i) <- tr.ep_id.(p);
      i := p
    end
    else continue := false
  done;
  tr.ep_val.(!i) <- v;
  tr.ep_id.(!i) <- id

let ep_pop_root tr =
  tr.ep_len <- tr.ep_len - 1;
  let v = tr.ep_val.(tr.ep_len) and id = tr.ep_id.(tr.ep_len) in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let best = ref (-1) in
    let bv = ref v and bi = ref id in
    if l < tr.ep_len && ep_before tr.ep_val.(l) tr.ep_id.(l) !bv !bi then begin
      best := l;
      bv := tr.ep_val.(l);
      bi := tr.ep_id.(l)
    end;
    if r < tr.ep_len && ep_before tr.ep_val.(r) tr.ep_id.(r) !bv !bi then
      best := r;
    if !best < 0 then begin
      if tr.ep_len > 0 then begin
        tr.ep_val.(!i) <- v;
        tr.ep_id.(!i) <- id
      end;
      continue := false
    end
    else begin
      tr.ep_val.(!i) <- tr.ep_val.(!best);
      tr.ep_id.(!i) <- tr.ep_id.(!best);
      i := !best
    end
  done

let ep_rebuild tr =
  tr.ep_len <- 0;
  Array.iter (fun id -> ep_push tr tr.arr.(id) id) tr.base.endpoint_ids

(* Discard stale entries until the root reflects a current arrival. *)
let rec ep_best tr =
  if tr.ep_len = 0 then invalid_arg "Sta.trial: no endpoints"
  else
    let v = tr.ep_val.(0) and id = tr.ep_id.(0) in
    if tr.arr.(id) = v then (id, v)
    else begin
      ep_pop_root tr;
      ep_best tr
    end

let trial lib t =
  let n = Array.length t.arrival in
  let is_endpoint = Array.make n false in
  Array.iter (fun id -> is_endpoint.(id) <- true) t.endpoint_ids;
  let tr =
    {
      lib;
      base = t;
      arr = Array.copy t.arrival;
      work = Work.create (positions_of t.netlist);
      queued = Array.make n false;
      is_endpoint;
      undo_ids = Array.make 64 0;
      undo_vals = Array.make 64 0.;
      undo_len = 0;
      ep_val = Array.make (max 64 (Array.length t.endpoint_ids)) 0.;
      ep_id = Array.make (max 64 (Array.length t.endpoint_ids)) 0;
      ep_len = 0;
    }
  in
  ep_rebuild tr;
  tr

let undo_push tr id v =
  if tr.undo_len = Array.length tr.undo_ids then begin
    let ids = Array.make (2 * tr.undo_len) 0 in
    let vals = Array.make (2 * tr.undo_len) 0. in
    Array.blit tr.undo_ids 0 ids 0 tr.undo_len;
    Array.blit tr.undo_vals 0 vals 0 tr.undo_len;
    tr.undo_ids <- ids;
    tr.undo_vals <- vals
  end;
  tr.undo_ids.(tr.undo_len) <- id;
  tr.undo_vals.(tr.undo_len) <- v;
  tr.undo_len <- tr.undo_len + 1

let trial_apply tr ~kind_of changed =
  assert (tr.undo_len = 0);
  let cone =
    propagate tr.lib tr.base.netlist tr.arr tr.work tr.queued ~kind_of
      ~on_change:(fun id old ->
        undo_push tr id old;
        ())
      changed
  in
  (* refresh endpoint entries touched by the propagation *)
  for k = 0 to tr.undo_len - 1 do
    let id = tr.undo_ids.(k) in
    if tr.is_endpoint.(id) then ep_push tr tr.arr.(id) id
  done;
  Metrics.incr "sta.retime.cone";
  Metrics.observe "sta.retime.cone_nodes" (float_of_int cone);
  cone

(* Bound heap garbage: stale entries stay at most a small multiple of
   the endpoint count before a rebuild resets them. *)
let ep_gc tr =
  if tr.ep_len > max 1024 (8 * Array.length tr.base.endpoint_ids) then
    ep_rebuild tr

let trial_undo tr =
  for k = tr.undo_len - 1 downto 0 do
    let id = tr.undo_ids.(k) in
    tr.arr.(id) <- tr.undo_vals.(k);
    if tr.is_endpoint.(id) then ep_push tr tr.undo_vals.(k) id
  done;
  tr.undo_len <- 0;
  ep_gc tr

let trial_delay_ps tr ~kind_of changed =
  ignore (trial_apply tr ~kind_of changed);
  let _, v = ep_best tr in
  trial_undo tr;
  v

let trial_critical tr ~kind_of changed =
  ignore (trial_apply tr ~kind_of changed);
  let id, v = ep_best tr in
  let path = path_to_arrivals tr.base.netlist tr.arr id in
  trial_undo tr;
  (v, path)

(* ---------- persistent sessions ---------- *)

(* [trial_advance] moves the trial's arrival state permanently (no undo
   entry is written): the caller owns the staged-set bookkeeping and
   changes it one small delta at a time, which is what makes the
   parametric selection loop's evaluations proportional to the delta
   cone instead of the whole accumulated replacement set. *)
let trial_advance tr ~kind_of seeds =
  let touched = ref [] in
  let cone =
    propagate tr.lib tr.base.netlist tr.arr tr.work tr.queued ~kind_of
      ~on_change:(fun id _old ->
        if tr.is_endpoint.(id) then touched := id :: !touched)
      seeds
  in
  List.iter (fun id -> ep_push tr tr.arr.(id) id) !touched;
  Metrics.incr "sta.retime.cone";
  Metrics.observe "sta.retime.cone_nodes" (float_of_int cone);
  ep_gc tr;
  cone

let trial_current_delay_ps tr = snd (ep_best tr)

let trial_current_critical tr =
  let id, v = ep_best tr in
  (v, path_to_arrivals tr.base.netlist tr.arr id)
