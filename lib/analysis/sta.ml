module Netlist = Sttc_netlist.Netlist
module Library = Sttc_tech.Library

type t = {
  netlist : Netlist.t;
  arrival : float array;
  endpoints : (Netlist.node_id * float) list; (* worst first *)
  critical_end : Netlist.node_id;
  critical : float;
}

let analyze lib nl =
  let n = Netlist.node_count nl in
  let arrival = Array.make n 0. in
  let order = Netlist.topo_order nl in
  Array.iter
    (fun id ->
      let node = Netlist.node nl id in
      match node.Netlist.kind with
      | Netlist.Pi | Netlist.Const _ -> arrival.(id) <- 0.
      | Netlist.Dff ->
          (* launch at clk-to-q; the D-input arrival is an endpoint handled
             below, not part of this node's output arrival *)
          arrival.(id) <- (Library.dff_cell lib).Sttc_tech.Cell.delay_ps
      | Netlist.Gate _ | Netlist.Lut _ ->
          let worst = ref 0. in
          Array.iter
            (fun src -> if arrival.(src) > !worst then worst := arrival.(src))
            node.Netlist.fanins;
          arrival.(id) <- !worst +. Library.node_delay_ps lib node.Netlist.kind)
    order;
  (* endpoints: D-inputs of flip-flops and primary-output drivers *)
  let endpoint_tbl = Hashtbl.create 64 in
  List.iter
    (fun ff ->
      let d = (Netlist.fanins nl ff).(0) in
      let cur = try Hashtbl.find endpoint_tbl d with Not_found -> neg_infinity in
      Hashtbl.replace endpoint_tbl d (Float.max cur arrival.(d)))
    (Netlist.dffs nl);
  List.iter
    (fun po ->
      let cur = try Hashtbl.find endpoint_tbl po with Not_found -> neg_infinity in
      Hashtbl.replace endpoint_tbl po (Float.max cur arrival.(po)))
    (Netlist.pos nl);
  let endpoints =
    Hashtbl.fold (fun id a acc -> (id, a) :: acc) endpoint_tbl []
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  let critical_end, critical =
    match endpoints with
    | [] -> invalid_arg "Sta.analyze: netlist has no endpoints"
    | (id, a) :: _ -> (id, a)
  in
  { netlist = nl; arrival; endpoints; critical_end; critical }

let arrival_ps t id =
  if id < 0 || id >= Array.length t.arrival then invalid_arg "Sta.arrival_ps";
  t.arrival.(id)

let critical_delay_ps t = t.critical
let critical_endpoint t = t.critical_end

(* Walk backward from an endpoint through the fanin with the worst
   arrival until a source is reached. *)
let path_to t endpoint =
  let nl = t.netlist in
  let rec go id acc =
    let acc = id :: acc in
    if Netlist.is_combinational (Netlist.kind nl id) then begin
      let fanins = Netlist.fanins nl id in
      let best = ref fanins.(0) in
      Array.iter
        (fun src -> if t.arrival.(src) > t.arrival.(!best) then best := src)
        fanins;
      go !best acc
    end
    else acc
  in
  go endpoint []

let critical_path t = path_to t t.critical_end

let max_frequency_ghz t =
  if t.critical <= 0. then infinity else 1000. /. t.critical

let slack_ps t ~clock_ps = clock_ps -. t.critical
let endpoint_arrivals t = t.endpoints

let worst_paths t ~k =
  List.filteri (fun i _ -> i < k) t.endpoints
  |> List.map (fun (endpoint, arrival) -> (arrival, path_to t endpoint))

let report ?(k = 3) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "critical delay %.1f ps (max %.3f GHz), %d endpoints\n"
       t.critical (max_frequency_ghz t) (List.length t.endpoints));
  List.iteri
    (fun i (arrival, path) ->
      Buffer.add_string buf (Printf.sprintf "path %d (%.1f ps): " (i + 1) arrival);
      Buffer.add_string buf
        (String.concat " -> "
           (List.map
              (fun id ->
                Printf.sprintf "%s@%.0f" (Netlist.name t.netlist id)
                  t.arrival.(id))
              path));
      Buffer.add_char buf '\n')
    (worst_paths t ~k);
  Buffer.contents buf
