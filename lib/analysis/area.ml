module Netlist = Sttc_netlist.Netlist
module Library = Sttc_tech.Library

type report = {
  total_um2 : float;
  gates_um2 : float;
  luts_um2 : float;
  dffs_um2 : float;
}

let estimate lib nl =
  let gates = ref 0. and luts = ref 0. and dffs = ref 0. in
  Netlist.iter
    (fun _id node ->
      let a = Library.node_area_um2 lib node.Netlist.kind in
      match node.Netlist.kind with
      | Netlist.Gate _ -> gates := !gates +. a
      | Netlist.Lut _ -> luts := !luts +. a
      | Netlist.Dff -> dffs := !dffs +. a
      | Netlist.Pi | Netlist.Const _ -> ())
    nl;
  {
    total_um2 = !gates +. !luts +. !dffs;
    gates_um2 = !gates;
    luts_um2 = !luts;
    dffs_um2 = !dffs;
  }

let overhead_pct ~base ~modified =
  Sttc_util.Stats.relative_overhead ~base:base.total_um2
    ~modified:modified.total_um2

let pp_report fmt r =
  Format.fprintf fmt "area: %.1f um2 (gates %.1f, LUTs %.1f, DFFs %.1f)"
    r.total_um2 r.gates_um2 r.luts_um2 r.dffs_um2
