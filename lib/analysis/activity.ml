module Netlist = Sttc_netlist.Netlist
module Truth = Sttc_logic.Truth
module Gate_fn = Sttc_logic.Gate_fn

type t = {
  netlist : Netlist.t;
  prob : float array;
  converged : bool;
}

(* Exact output probability of a truth table given independent input
   one-probabilities. *)
let truth_probability table input_probs =
  let n = Truth.arity table in
  assert (Array.length input_probs = n);
  let total = ref 0. in
  for r = 0 to (1 lsl n) - 1 do
    if Truth.row table r then begin
      let p = ref 1. in
      for k = 0 to n - 1 do
        let pk = input_probs.(k) in
        p := !p *. (if (r lsr k) land 1 = 1 then pk else 1. -. pk)
      done;
      total := !total +. !p
    end
  done;
  (* rounding across many rows can drift a hair outside [0,1] *)
  Float.min 1. (Float.max 0. !total)

let analyze ?(pi_probability = 0.5) ?(max_iterations = 40) ?(tolerance = 1e-4)
    nl =
  if pi_probability < 0. || pi_probability > 1. then
    invalid_arg "Activity.analyze: pi_probability";
  let n = Netlist.node_count nl in
  let prob = Array.make n 0.5 in
  let order = Netlist.topo_order nl in
  Netlist.iter
    (fun id node ->
      match node.Netlist.kind with
      | Netlist.Pi -> prob.(id) <- pi_probability
      | Netlist.Const v -> prob.(id) <- (if v then 1. else 0.)
      | _ -> ())
    nl;
  let propagate_comb () =
    Array.iter
      (fun id ->
        let node = Netlist.node nl id in
        match node.Netlist.kind with
        | Netlist.Gate fn ->
            let ip = Array.map (fun s -> prob.(s)) node.Netlist.fanins in
            prob.(id) <- truth_probability (Gate_fn.truth fn) ip
        | Netlist.Lut { config = Some c; _ } ->
            let ip = Array.map (fun s -> prob.(s)) node.Netlist.fanins in
            prob.(id) <- truth_probability c ip
        | Netlist.Lut { config = None; _ } -> prob.(id) <- 0.5
        | Netlist.Pi | Netlist.Const _ | Netlist.Dff -> ())
      order
  in
  let dffs = Netlist.dffs nl in
  let rec iterate k =
    propagate_comb ();
    let delta = ref 0. in
    List.iter
      (fun ff ->
        let d = (Netlist.fanins nl ff).(0) in
        let next = prob.(d) in
        delta := Float.max !delta (Float.abs (next -. prob.(ff)));
        prob.(ff) <- next)
      dffs;
    if !delta <= tolerance then true
    else if k >= max_iterations then false
    else iterate (k + 1)
  in
  let converged = if dffs = [] then (propagate_comb (); true) else iterate 1 in
  { netlist = nl; prob; converged }

(* True when two kinds denote the same probability transfer function, so
   swapping one for the other cannot change any computed probability.
   Gate→configured-LUT replacements that keep the function (the protect
   flow's default) land in the [Truth.equal] cases. *)
let same_transfer ka kb =
  ka == kb
  ||
  match (ka, kb) with
  | Netlist.Gate fa, Netlist.Gate fb -> fa = fb
  | Netlist.Lut { config = Some a; _ }, Netlist.Lut { config = Some b; _ } ->
      Truth.equal a b
  | Netlist.Lut { config = None; _ }, Netlist.Lut { config = None; _ } -> true
  | Netlist.Gate f, Netlist.Lut { config = Some c; _ }
  | Netlist.Lut { config = Some c; _ }, Netlist.Gate f ->
      Truth.equal (Gate_fn.truth f) c
  | Netlist.Pi, Netlist.Pi | Netlist.Dff, Netlist.Dff -> true
  | Netlist.Const a, Netlist.Const b -> a = b
  | _ -> false

let refine t nl ~changed =
  let module Metrics = Sttc_obs.Metrics in
  let full () =
    Metrics.incr "activity.refine.full";
    analyze nl
  in
  match Netlist.kind_delta t.netlist nl with
  | None -> full ()
  | Some delta ->
      let n = Array.length t.prob in
      let dirty = Array.make n false in
      let seeds = ref [] in
      List.iter
        (fun id ->
          if id < 0 || id >= n then
            invalid_arg "Activity.refine: node id out of range";
          if
            (not dirty.(id))
            && not (same_transfer (Netlist.kind t.netlist id) (Netlist.kind nl id))
          then begin
            dirty.(id) <- true;
            seeds := id :: !seeds
          end)
        (List.rev_append delta changed);
      if !seeds = [] then begin
        (* every transfer function is unchanged: the from-scratch fixpoint
           on [nl] retraces the base trajectory bit for bit *)
        Metrics.incr "activity.refine.cone";
        Metrics.observe "activity.refine.cone_nodes" 0.;
        { netlist = nl; prob = Array.copy t.prob; converged = t.converged }
      end
      else begin
        (* Forward cone of the dirty nodes (iterative; fanout caches of
           the base remain valid for [nl] per [kind_delta]).  The cone
           refine is exact only when the cone is sealed off from the
           sequential fixpoint: no cone node reads a flip-flop (the base's
           stored comb values were computed against pre-final-update DFF
           probabilities) and none feeds a flip-flop D input (which would
           alter the fixpoint trajectory itself). *)
        let in_cone = Array.make n false in
        let stack = Sttc_util.Growable.create () in
        let sealed = ref true in
        List.iter
          (fun id ->
            in_cone.(id) <- true;
            ignore (Sttc_util.Growable.push stack id))
          !seeds;
        let cone = ref 0 in
        while !sealed && not (Sttc_util.Growable.is_empty stack) do
          let id = Sttc_util.Growable.pop stack in
          incr cone;
          Array.iter
            (fun src ->
              match Netlist.kind nl src with
              | Netlist.Dff -> sealed := false
              | _ -> ())
            (Netlist.fanins nl id);
          List.iter
            (fun out ->
              match Netlist.kind nl out with
              | Netlist.Dff -> sealed := false
              | _ ->
                  if not in_cone.(out) then begin
                    in_cone.(out) <- true;
                    ignore (Sttc_util.Growable.push stack out)
                  end)
            (Netlist.fanouts nl id)
        done;
        if not !sealed then full ()
        else begin
          let prob = Array.copy t.prob in
          Array.iter
            (fun id ->
              if in_cone.(id) then
                let node = Netlist.node nl id in
                match node.Netlist.kind with
                | Netlist.Gate fn ->
                    let ip = Array.map (fun s -> prob.(s)) node.Netlist.fanins in
                    prob.(id) <- truth_probability (Gate_fn.truth fn) ip
                | Netlist.Lut { config = Some c; _ } ->
                    let ip = Array.map (fun s -> prob.(s)) node.Netlist.fanins in
                    prob.(id) <- truth_probability c ip
                | Netlist.Lut { config = None; _ } -> prob.(id) <- 0.5
                | Netlist.Pi | Netlist.Const _ | Netlist.Dff -> ())
            (Netlist.topo_order nl);
          Metrics.incr "activity.refine.cone";
          Metrics.observe "activity.refine.cone_nodes" (float_of_int !cone);
          { netlist = nl; prob; converged = t.converged }
        end
      end

let probability t id =
  if id < 0 || id >= Array.length t.prob then invalid_arg "Activity.probability";
  t.prob.(id)

(* Standard temporal-independence toggle estimate. *)
let switching t id =
  let p = probability t id in
  2. *. p *. (1. -. p)

let average_switching t =
  let ids =
    Netlist.fold
      (fun id n acc -> if Netlist.is_combinational n.Netlist.kind then id :: acc else acc)
      t.netlist []
  in
  match ids with
  | [] -> 0.
  | _ ->
      List.fold_left (fun acc id -> acc +. switching t id) 0. ids
      /. float_of_int (List.length ids)

let converged t = t.converged
