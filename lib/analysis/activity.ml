module Netlist = Sttc_netlist.Netlist
module Truth = Sttc_logic.Truth
module Gate_fn = Sttc_logic.Gate_fn

type t = {
  netlist : Netlist.t;
  prob : float array;
  converged : bool;
}

(* Exact output probability of a truth table given independent input
   one-probabilities. *)
let truth_probability table input_probs =
  let n = Truth.arity table in
  assert (Array.length input_probs = n);
  let total = ref 0. in
  for r = 0 to (1 lsl n) - 1 do
    if Truth.row table r then begin
      let p = ref 1. in
      for k = 0 to n - 1 do
        let pk = input_probs.(k) in
        p := !p *. (if (r lsr k) land 1 = 1 then pk else 1. -. pk)
      done;
      total := !total +. !p
    end
  done;
  (* rounding across many rows can drift a hair outside [0,1] *)
  Float.min 1. (Float.max 0. !total)

let analyze ?(pi_probability = 0.5) ?(max_iterations = 40) ?(tolerance = 1e-4)
    nl =
  if pi_probability < 0. || pi_probability > 1. then
    invalid_arg "Activity.analyze: pi_probability";
  let n = Netlist.node_count nl in
  let prob = Array.make n 0.5 in
  let order = Netlist.topo_order nl in
  Netlist.iter
    (fun id node ->
      match node.Netlist.kind with
      | Netlist.Pi -> prob.(id) <- pi_probability
      | Netlist.Const v -> prob.(id) <- (if v then 1. else 0.)
      | _ -> ())
    nl;
  let propagate_comb () =
    Array.iter
      (fun id ->
        let node = Netlist.node nl id in
        match node.Netlist.kind with
        | Netlist.Gate fn ->
            let ip = Array.map (fun s -> prob.(s)) node.Netlist.fanins in
            prob.(id) <- truth_probability (Gate_fn.truth fn) ip
        | Netlist.Lut { config = Some c; _ } ->
            let ip = Array.map (fun s -> prob.(s)) node.Netlist.fanins in
            prob.(id) <- truth_probability c ip
        | Netlist.Lut { config = None; _ } -> prob.(id) <- 0.5
        | Netlist.Pi | Netlist.Const _ | Netlist.Dff -> ())
      order
  in
  let dffs = Netlist.dffs nl in
  let rec iterate k =
    propagate_comb ();
    let delta = ref 0. in
    List.iter
      (fun ff ->
        let d = (Netlist.fanins nl ff).(0) in
        let next = prob.(d) in
        delta := Float.max !delta (Float.abs (next -. prob.(ff)));
        prob.(ff) <- next)
      dffs;
    if !delta <= tolerance then true
    else if k >= max_iterations then false
    else iterate (k + 1)
  in
  let converged = if dffs = [] then (propagate_comb (); true) else iterate 1 in
  { netlist = nl; prob; converged }

let probability t id =
  if id < 0 || id >= Array.length t.prob then invalid_arg "Activity.probability";
  t.prob.(id)

(* Standard temporal-independence toggle estimate. *)
let switching t id =
  let p = probability t id in
  2. *. p *. (1. -. p)

let average_switching t =
  let ids =
    Netlist.fold
      (fun id n acc -> if Netlist.is_combinational n.Netlist.kind then id :: acc else acc)
      t.netlist []
  in
  match ids with
  | [] -> 0.
  | _ ->
      List.fold_left (fun acc id -> acc +. switching t id) 0. ids
      /. float_of_int (List.length ids)

let converged t = t.converged
