(** Signal probability and switching-activity estimation.

    Signal probabilities propagate from the primary inputs (default 0.5)
    through exact per-gate truth-table evaluation under an input-
    independence assumption; sequential feedback is resolved by fixpoint
    iteration over the flip-flop state probabilities.  Switching activity
    per node is the temporal-independence estimate [2 p (1 - p)] — the
    alpha of the paper's Fig. 1 power columns. *)

type t

val analyze :
  ?pi_probability:float ->
  ?max_iterations:int ->
  ?tolerance:float ->
  Sttc_netlist.Netlist.t ->
  t
(** Defaults: PI one-probability 0.5, 40 iterations, tolerance 1e-4.
    Unconfigured LUTs take probability 0.5. *)

val refine :
  t -> Sttc_netlist.Netlist.t -> changed:Sttc_netlist.Netlist.node_id list -> t
(** [refine t nl ~changed] is [analyze nl] (default parameters — which the
    base must also have been computed with), reusing [t]'s solution when
    that is provably exact: when [nl] is id-compatible with [t]'s netlist
    ({!Sttc_netlist.Netlist.kind_delta}) and every changed node keeps the
    same probability transfer function (e.g. gate→LUT replacements that
    keep the function), the base solution is returned as-is; when the
    transfer functions of some nodes did change but their forward cone
    neither reads nor feeds a flip-flop, only that cone is re-propagated.
    Any other case falls back to a full fixpoint.  The result is
    bit-identical to [analyze nl] in all cases.  Counters:
    [activity.refine.cone] / [activity.refine.full], with the visited-node
    count under [activity.refine.cone_nodes]. *)

val probability : t -> Sttc_netlist.Netlist.node_id -> float
(** Probability that the node's signal is 1. *)

val switching : t -> Sttc_netlist.Netlist.node_id -> float
(** Per-cycle output switching activity in [0, 0.5]. *)

val average_switching : t -> float
(** Mean over combinational nodes, for reporting. *)

val converged : t -> bool
(** False when the flip-flop fixpoint hit the iteration limit (the result
    is still usable as an estimate). *)
